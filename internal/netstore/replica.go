package netstore

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"knnpc/internal/disk"
	"knnpc/internal/pigraph"
)

// Replica is a read-only state-store node shadowing one primary shard.
// It serves the protocol's read verbs (EPOCH, GETVIEW, NEIGHBORS,
// PROFILE) from a local cache of the primary's serve views and rejects
// every compute verb, so it can never perturb phase-4 state.
//
// Staleness is bounded by the epoch discipline: before answering a
// lookup the replica probes the primary's view epoch for the owning
// partition — a metadata roundtrip that costs the primary no device
// time — and re-pulls the view only when the stamp moved. Between
// commits the replica therefore serves epoch N from its own spindle
// while the primary's spindle grinds through phase-4 state traffic;
// the moment iteration N+1 commits, the next lookup self-invalidates
// and pulls epoch N+1. A read observes exactly one of the two — never
// a mix, because views install atomically on both ends.
type Replica struct {
	cfg     ReplicaConfig
	router  pigraph.ShardRouter
	lo, hi  int
	ln      net.Listener
	primary *shardConn

	mu      sync.Mutex
	views   map[uint32]serveView
	userIdx map[uint32]uint32

	pulls    atomic.Uint64 // view re-pulls from the primary
	degraded atomic.Uint64 // lookups served stale because the primary was unreachable
	closed   atomic.Bool

	connMu      sync.Mutex
	conns       map[net.Conn]struct{}
	connsClosed bool
	wg          sync.WaitGroup
}

// ReplicaConfig describes one read replica.
type ReplicaConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for ephemeral).
	Addr string
	// Primary is the address of the shard this replica shadows.
	Primary string
	// Shard and Shards place the shadowed primary in the cluster; the
	// replica owns (reads for) the same contiguous partition range.
	Shard, Shards int
	// NumPartitions is the engine's partition count m.
	NumPartitions int
	// Device, when non-nil, is the replica's own spindle: cached-view
	// installs pay sequential writes and lookups pay point reads here
	// instead of on the primary's device — the whole reason replicas
	// improve tail latency under phase-4 load. Nil adds no latency.
	Device *disk.Device
	// ProbeTimeout bounds each freshness probe and view pull against
	// the primary, so a dead primary can never wedge a lookup — the
	// probe fails fast and the replica serves its cached view in
	// degraded mode instead. Default 1s.
	ProbeTimeout time.Duration
	// WrapListener, when non-nil, wraps the replica's listener before
	// serving starts (the fault-injection seam, same as ServerConfig's).
	WrapListener func(net.Listener) net.Listener
}

// NewReplica dials the primary, binds the replica's listener, and
// starts serving in the background.
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	router, err := pigraph.NewShardRouter(cfg.NumPartitions, max(cfg.Shards, 1))
	if err != nil {
		return nil, fmt.Errorf("netstore: %w", err)
	}
	if cfg.Shard < 0 || cfg.Shard >= router.NumShards() {
		return nil, fmt.Errorf("netstore: shard index %d out of range [0,%d)", cfg.Shard, router.NumShards())
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	// The probe connection is a regular client shard connection with a
	// tight envelope: short deadline, two attempts, fast backoff — a
	// probe that cannot answer quickly should fail into the degraded
	// path, not queue lookups behind a dead primary. Reconnects are
	// transparent, so a restarted primary is picked up on the next probe.
	popts := ClientOptions{
		OpTimeout:   cfg.ProbeTimeout,
		DialTimeout: cfg.ProbeTimeout,
		MaxAttempts: 2,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	conn, err := net.DialTimeout("tcp", cfg.Primary, popts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netstore: replica dial primary %s: %w", cfg.Primary, err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netstore: listen %s: %w", cfg.Addr, err)
	}
	if cfg.WrapListener != nil {
		ln = cfg.WrapListener(ln)
	}
	r := &Replica{
		cfg:    cfg,
		router: router,
		ln:     ln,
		primary: &shardConn{
			addr: cfg.Primary,
			opts: popts,
			conn: conn,
			rng:  rand.New(rand.NewSource(jitterSeed(0, cfg.Shard))),
		},
		views:   make(map[uint32]serveView),
		userIdx: make(map[uint32]uint32),
		conns:   make(map[net.Conn]struct{}),
	}
	r.lo, r.hi = router.Range(cfg.Shard)
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr reports the listener's address (host:port).
func (r *Replica) Addr() string { return r.ln.Addr().String() }

// Range reports the contiguous partition range [lo, hi) this replica
// serves reads for.
func (r *Replica) Range() (lo, hi int) { return r.lo, r.hi }

// Device reports the replica's emulated spindle (nil without emulation).
func (r *Replica) Device() *disk.Device { return r.cfg.Device }

// Pulls reports how many view re-pulls the replica has issued — the
// observable cost of invalidation (at most one per partition per
// committed epoch, regardless of read rate).
func (r *Replica) Pulls() uint64 { return r.pulls.Load() }

// Degraded reports how many requests were answered from the cached
// view because the primary was unreachable — the observable size of
// the degraded-mode window.
func (r *Replica) Degraded() uint64 { return r.degraded.Load() }

// Close stops the listener, hangs up on the primary and every client,
// and waits for all handlers to return.
func (r *Replica) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	err := r.ln.Close()
	r.primary.mu.Lock()
	r.primary.poisonLocked()
	r.primary.mu.Unlock()
	r.connMu.Lock()
	r.connsClosed = true
	for c := range r.conns {
		c.Close()
	}
	r.connMu.Unlock()
	r.wg.Wait()
	return err
}

func (r *Replica) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return
		}
		r.connMu.Lock()
		if r.connsClosed {
			r.connMu.Unlock()
			conn.Close()
			continue
		}
		r.conns[conn] = struct{}{}
		r.connMu.Unlock()
		r.wg.Add(1)
		go r.serveConn(conn)
	}
}

func (r *Replica) serveConn(conn net.Conn) {
	defer r.wg.Done()
	defer func() {
		conn.Close()
		r.connMu.Lock()
		delete(r.conns, conn)
		r.connMu.Unlock()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		if err := r.serveRequest(conn, req); err != nil {
			return
		}
	}
}

func (r *Replica) serveRequest(conn net.Conn, req []byte) error {
	op, body, err := cutByte(req)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		status := byte(statusErr)
		if errors.Is(err, ErrNotServed) {
			status = statusMiss
		}
		return writeFrame(conn, append([]byte{status}, err.Error()...))
	}
	ok := func(payload []byte) error {
		return writeFrame(conn, append([]byte{statusOK}, payload...))
	}
	switch op {
	case opEpoch:
		// Forwarded: the epoch question is about the primary's state, and
		// answering it from the cache would defeat its purpose.
		p, _, err := cutU32(body)
		if err != nil {
			return err
		}
		base, view, err := r.primaryEpoch(p)
		if err != nil {
			return fail(err)
		}
		return ok(appendU64(appendU64(nil, base), view))

	case opGetView:
		p, _, err := cutU32(body)
		if err != nil {
			return err
		}
		if err := r.refreshPartition(p); err != nil {
			return fail(err)
		}
		r.mu.Lock()
		v, okV := r.views[p]
		r.mu.Unlock()
		if !okV {
			return fail(fmt.Errorf("netstore: partition %d has no published serve view", p))
		}
		return ok(append(appendU64(nil, v.epoch), v.blob...))

	case opNeighbors:
		u, _, err := cutU32(body)
		if err != nil {
			return err
		}
		epoch, entry, err := r.lookup(u)
		if err != nil {
			return fail(err)
		}
		resp := appendU64(nil, epoch)
		resp = appendU32(resp, uint32(len(entry.Neighbors)))
		for _, id := range entry.Neighbors {
			resp = appendU32(resp, id)
		}
		return ok(resp)

	case opProfile:
		u, _, err := cutU32(body)
		if err != nil {
			return err
		}
		epoch, entry, err := r.lookup(u)
		if err != nil {
			return fail(err)
		}
		return ok(append(appendU64(nil, epoch), entry.Profile...))

	default:
		// Every non-read verb — GET, PUT, LEASE, RELEASE, COLLECT, CLEAR,
		// PUSHUPD, DRAINUPD, ADDUSER, DELUSER, DRAINMUT, STALENESS — is
		// refused: a replica can never mutate the primary's state or
		// absorb writes (or mutations) that would be lost on re-pull, and
		// staleness is primary-side metadata the front end reads there.
		return fail(fmt.Errorf("netstore: replica of shard %d is read-only (op 0x%02x refused)", r.cfg.Shard, op))
	}
}

// primaryEpoch probes the primary for partition p's (base, view) epoch
// pair — the cheap freshness check.
func (r *Replica) primaryEpoch(p uint32) (base, view uint64, err error) {
	body, err := r.primary.roundTrip(appendU32([]byte{opEpoch}, p))
	if err != nil {
		return 0, 0, err
	}
	base, rest, err := cutU64(body)
	if err != nil {
		return 0, 0, err
	}
	view, _, err = cutU64(rest)
	return base, view, err
}

// refreshPartition brings partition p's cached view up to the
// primary's current view epoch: probe, and re-pull only on mismatch.
// A primary that has not published a view yet (view epoch 0) leaves
// the cache as-is.
//
// The probe carries the configured deadline and NEVER fails a request
// it could still answer: when the primary is unreachable (transient
// failure) and a cached view exists, the replica serves it as-is —
// degraded mode, staleness bounded by however long the primary stays
// down instead of by one epoch. Only a partition with no cached view
// at all surfaces the probe failure.
func (r *Replica) refreshPartition(p uint32) error {
	if int(p) < r.lo || int(p) >= r.hi {
		return fmt.Errorf("netstore: partition %d outside replica %d/%d range [%d,%d)",
			p, r.cfg.Shard, r.router.NumShards(), r.lo, r.hi)
	}
	r.mu.Lock()
	cached, have := r.views[p]
	r.mu.Unlock()
	_, view, err := r.primaryEpoch(p)
	if err != nil {
		if IsTransient(err) && have {
			r.degraded.Add(1)
			return nil
		}
		return err
	}
	if view == 0 || (have && cached.epoch == view) {
		return nil
	}
	epoch, blob, err := r.primaryGetView(p)
	if err != nil {
		if IsTransient(err) && have {
			// The primary died between the probe and the pull; the view
			// it advertised is gone for now. The cached epoch still
			// serves.
			r.degraded.Add(1)
			return nil
		}
		return err
	}
	entries, err := DecodeView(blob)
	if err != nil {
		return err
	}
	idx := make(map[uint32]ViewEntry, len(entries))
	for _, e := range entries {
		idx[e.User] = e
	}
	// Installing the pulled view is a sequential write to the replica's
	// own spindle — paid here, off the primary's device.
	r.cfg.Device.Append(int64(len(blob)))
	r.mu.Lock()
	r.views[p] = serveView{epoch: epoch, blob: blob, index: idx}
	for u := range idx {
		r.userIdx[u] = p
	}
	r.mu.Unlock()
	r.pulls.Add(1)
	return nil
}

func (r *Replica) primaryGetView(p uint32) (uint64, []byte, error) {
	body, err := r.primary.roundTrip(appendU32([]byte{opGetView}, p))
	if err != nil {
		return 0, nil, err
	}
	return cutU64(body)
}

// lookup resolves user u against the freshest cached views. Answers
// come from the in-memory cache at RAM speed — the replica's spindle
// is charged only when a pull installs a new view (refreshPartition),
// which is what makes replica reads cheap under phase-4 load. An
// unknown user triggers a full refresh of the replica's partition
// range — the user may have moved partitions at the last commit —
// before giving up with ErrNotServed.
func (r *Replica) lookup(u uint32) (uint64, ViewEntry, error) {
	r.mu.Lock()
	p, hinted := r.userIdx[u]
	r.mu.Unlock()
	if hinted {
		if err := r.refreshPartition(p); err != nil {
			return 0, ViewEntry{}, err
		}
		if epoch, entry, okE := r.cachedEntry(u); okE {
			return epoch, entry, nil
		}
	}
	for p := uint32(r.lo); int(p) < r.hi; p++ {
		if err := r.refreshPartition(p); err != nil {
			return 0, ViewEntry{}, err
		}
	}
	if epoch, entry, okE := r.cachedEntry(u); okE {
		return epoch, entry, nil
	}
	return 0, ViewEntry{}, fmt.Errorf("%w: user %d on replica of shard %d", ErrNotServed, u, r.cfg.Shard)
}

// cachedEntry resolves u through the user index under the cache mutex.
func (r *Replica) cachedEntry(u uint32) (uint64, ViewEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.userIdx[u]
	if !ok {
		return 0, ViewEntry{}, false
	}
	v := r.views[p]
	entry, ok := v.index[u]
	return v.epoch, entry, ok
}

// ReplicaSet bundles one loopback replica per primary shard — the
// serving-tier counterpart of Cluster.
type ReplicaSet struct {
	replicas []*Replica
	addrs    []string
}

// StartReplicas launches one loopback replica per primary address
// (primaries[i] must be shard i over numPartitions partitions, the
// order Cluster and Dial use). A non-nil model gives every replica its
// own emulated spindle (named "replica0", "replica1", ...).
func StartReplicas(primaries []string, numPartitions int, model *disk.Model) (*ReplicaSet, error) {
	addrs := make([]string, len(primaries))
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return StartReplicasAt(addrs, primaries, numPartitions, model)
}

// StartReplicasAt launches one replica per listen address, addrs[i]
// shadowing primaries[i] — the externally addressed form cmd/statestore
// -replicaof uses; StartReplicas is its loopback specialization.
func StartReplicasAt(addrs, primaries []string, numPartitions int, model *disk.Model) (*ReplicaSet, error) {
	return StartReplicasOpts(addrs, primaries, numPartitions, model, ReplicaSetOptions{})
}

// ReplicaSetOptions carries the robustness knobs of an externally
// managed replica tier; the zero value reproduces StartReplicasAt.
type ReplicaSetOptions struct {
	// WrapListener, when non-nil, wraps each replica's listener — the
	// fault-injection seam.
	WrapListener func(shard int, ln net.Listener) net.Listener
}

// StartReplicasOpts is StartReplicasAt plus ReplicaSetOptions.
func StartReplicasOpts(addrs, primaries []string, numPartitions int, model *disk.Model, opts ReplicaSetOptions) (*ReplicaSet, error) {
	if len(addrs) != len(primaries) {
		return nil, fmt.Errorf("netstore: %d replica addresses for %d primaries", len(addrs), len(primaries))
	}
	rs := &ReplicaSet{}
	for i, primary := range primaries {
		var dev *disk.Device
		if model != nil {
			dev = disk.NewNamedDevice(*model, fmt.Sprintf("replica%d", i))
		}
		cfg := ReplicaConfig{
			Addr:          addrs[i],
			Primary:       primary,
			Shard:         i,
			Shards:        len(primaries),
			NumPartitions: numPartitions,
			Device:        dev,
		}
		if opts.WrapListener != nil {
			shard := i
			cfg.WrapListener = func(ln net.Listener) net.Listener { return opts.WrapListener(shard, ln) }
		}
		rep, err := NewReplica(cfg)
		if err != nil {
			rs.Close()
			return nil, err
		}
		rs.replicas = append(rs.replicas, rep)
		rs.addrs = append(rs.addrs, rep.Addr())
	}
	return rs, nil
}

// Addrs reports the replica addresses in shard order — Dial accepts
// them exactly like primary addresses; only the read verbs will answer.
func (rs *ReplicaSet) Addrs() []string { return append([]string(nil), rs.addrs...) }

// Replicas reports the live replicas in shard order.
func (rs *ReplicaSet) Replicas() []*Replica { return append([]*Replica(nil), rs.replicas...) }

// Close stops every replica.
func (rs *ReplicaSet) Close() error {
	var firstErr error
	for _, r := range rs.replicas {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
