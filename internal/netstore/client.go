package netstore

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"knnpc/internal/pigraph"
)

// ErrRetryable reports a transient server-side fault (statusRetry):
// the shard hit an injected or transient internal failure BEFORE
// applying the request, so retrying is always safe. Clients retry it
// automatically; it only escapes when the retry budget runs out.
var ErrRetryable = errors.New("netstore: transient server fault")

// ErrUnavailable reports a transport-level failure talking to a shard:
// dial refused, connection reset, deadline exceeded, torn frame. The
// client reconnects and retries behind it; when it escapes, the shard
// stayed unreachable for the whole retry budget. Match with errors.Is.
var ErrUnavailable = errors.New("netstore: shard unavailable")

// UnavailableError carries the failing shard's address and the
// underlying transport error. It matches ErrUnavailable.
type UnavailableError struct {
	// Addr is the shard's dial address.
	Addr string
	// Stage names the failing step: "dial", "send", or "receive".
	Stage string
	// Err is the underlying transport error.
	Err error
}

// Error renders the failure with its shard and stage.
func (e *UnavailableError) Error() string {
	return fmt.Sprintf("netstore: shard %s: %s: %v", e.Addr, e.Stage, e.Err)
}

// Unwrap exposes the underlying transport error.
func (e *UnavailableError) Unwrap() error { return e.Err }

// Is matches ErrUnavailable, so errors.Is(err, ErrUnavailable) holds
// for every transport failure without losing the wrapped cause.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// IsTransient classifies an error from any client method: true for
// failures that a retry (possibly after the shard restarts) can cure —
// transport failures and server-declared transient faults — false for
// everything that reflects real state: fencing rejections, lookup
// misses, protocol violations, application errors.
func IsTransient(err error) bool {
	return errors.Is(err, ErrUnavailable) || errors.Is(err, ErrRetryable)
}

// ClientOptions tunes the client's robustness envelope. The zero value
// selects defaults fit for the emulated-spindle deployments this repo
// runs: generous per-op deadlines (a collect against a busy emulated
// HDD legitimately takes a while) and a short, jittered backoff ladder.
type ClientOptions struct {
	// OpTimeout bounds each request/response exchange (armed as a
	// connection deadline around every frame). Default 30s.
	OpTimeout time.Duration
	// DialTimeout bounds each (re)connect attempt. Default 5s.
	DialTimeout time.Duration
	// MaxAttempts is the per-operation attempt budget across
	// reconnects. Default 4; 1 disables retries.
	MaxAttempts int
	// BackoffBase is the first retry's backoff; each further attempt
	// doubles it up to BackoffMax, then a uniform jitter in [0.5, 1.5)
	// scales the result. Defaults 25ms and 1s.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff before jitter.
	BackoffMax time.Duration
	// JitterSeed seeds the backoff jitter RNG (per shard connection).
	// Zero derives a fixed default, keeping the client deterministic
	// unless the caller opts into spread.
	JitterSeed int64
}

func (o *ClientOptions) applyDefaults() {
	if o.OpTimeout <= 0 {
		o.OpTimeout = 30 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
}

// Client is the engine-side face of the sharded state store. It routes
// every operation to the shard owning the partition (contiguous ranges
// via pigraph.ShardRouter — the same routing layer the servers
// validate against) over one persistent TCP connection per shard.
//
// Operations on DIFFERENT shards run concurrently — that is the whole
// point of shard-per-spindle — while operations on the same shard
// serialize on its connection, mirroring how a spindle queues anyway.
// All methods are safe for concurrent use by the phase-4 prefetch and
// write-back goroutines of any number of workers.
//
// Every operation is bounded and classified: frames carry the
// configured deadline, transport failures poison the connection and
// transparently redial on the next attempt with capped exponential
// backoff plus jitter, and errors that escape divide into transient
// (IsTransient — a retry or shard restart can cure them) and fatal
// (fencing, misses, protocol violations). Operations whose replay
// could double-apply state — the drains and mutation pushes — are
// retried only when the request provably never reached the server.
type Client struct {
	router pigraph.ShardRouter
	shards []*shardConn
	hints  hintCache
}

type shardConn struct {
	addr string
	opts ClientOptions

	mu   sync.Mutex
	conn net.Conn
	rng  *rand.Rand // backoff jitter; guarded by mu
}

// Dial connects to one server per address; addrs[i] must be the shard
// with index i over numPartitions partitions (the order the cluster —
// or the operator — started them in). Default ClientOptions apply.
func Dial(addrs []string, numPartitions int) (*Client, error) {
	return DialOptions(addrs, numPartitions, ClientOptions{})
}

// DialOptions is Dial with explicit robustness options. The initial
// dial is eager — a shard that is down now fails fast here; shards
// that die later are redialed transparently per operation.
func DialOptions(addrs []string, numPartitions int, opts ClientOptions) (*Client, error) {
	opts.applyDefaults()
	router, err := pigraph.NewShardRouter(numPartitions, len(addrs))
	if err != nil {
		return nil, fmt.Errorf("netstore: %w", err)
	}
	c := &Client{router: router, shards: make([]*shardConn, len(addrs))}
	for i, addr := range addrs {
		sc := &shardConn{
			addr: addr,
			opts: opts,
			rng:  rand.New(rand.NewSource(jitterSeed(opts.JitterSeed, i))),
		}
		conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netstore: dial shard %d at %s: %w", i, addr, err)
		}
		sc.conn = conn
		c.shards[i] = sc
	}
	return c, nil
}

// jitterSeed derives shard i's backoff jitter seed, mixing the shard
// index in so concurrent shard retries don't march in lockstep.
func jitterSeed(seed int64, shard int) int64 {
	if seed == 0 {
		seed = 0x6b6e6e70 // fixed default: deterministic unless opted out
	}
	return seed*1000003 + int64(shard)*7919 + 1
}

// NumShards reports the cluster width N.
func (c *Client) NumShards() int { return len(c.shards) }

// Close tears down every shard connection.
func (c *Client) Close() error {
	var firstErr error
	for _, sc := range c.shards {
		if sc == nil {
			continue
		}
		sc.mu.Lock()
		if sc.conn != nil {
			if err := sc.conn.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			sc.conn = nil
		}
		sc.mu.Unlock()
	}
	return firstErr
}

// shardFor routes a partition to its shard connection.
func (c *Client) shardFor(p uint32) (*shardConn, error) {
	s, err := c.router.ShardOf(p)
	if err != nil {
		return nil, err
	}
	return c.shards[s], nil
}

// roundTrip sends one request frame on the shard's connection and
// reads one response frame, serialized per shard, retrying transient
// failures across reconnects. Use only for idempotent requests — every
// verb except the drains and mutation pushes, which go through
// roundTripOnce (see the Client doc comment for why their replay is
// unsafe).
func (sc *shardConn) roundTrip(req []byte) ([]byte, error) {
	return sc.roundTripRetry(req, true)
}

// roundTripOnce is roundTrip for non-idempotent requests: a transport
// failure after the request may have reached the server is returned
// instead of retried, because a replay could double-apply.
func (sc *shardConn) roundTripOnce(req []byte) ([]byte, error) {
	return sc.roundTripRetry(req, false)
}

func (sc *shardConn) roundTripRetry(req []byte, idempotent bool) ([]byte, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var lastErr error
	for attempt := 0; attempt < sc.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			sc.backoffLocked(attempt)
		}
		sent, resp, err := sc.exchangeLocked(req)
		if err == nil {
			payload, err := checkResponse(resp)
			if err == nil {
				return payload, nil
			}
			if errors.Is(err, ErrRetryable) {
				// statusRetry's contract: the server did NOT apply the
				// request, so retrying is safe even for non-idempotent
				// verbs.
				lastErr = err
				continue
			}
			return nil, err // application-level failure: never retried
		}
		lastErr = err
		if sent && !idempotent {
			// The request may have been applied and only the response
			// lost; replaying could double-apply. Surface the ambiguity.
			return nil, err
		}
	}
	return nil, lastErr
}

// backoffLocked sleeps the capped exponential backoff for the given
// retry attempt, jittered uniformly in [0.5, 1.5) so shard retries
// spread instead of thundering together.
//
//knnlint:ignore locksleep the conn mutex serializes this shard's protocol stream; backing off IS this stream being down, and other shards proceed on their own conns
func (sc *shardConn) backoffLocked(attempt int) {
	d := sc.opts.BackoffBase << (attempt - 1)
	if d > sc.opts.BackoffMax || d <= 0 {
		d = sc.opts.BackoffMax
	}
	d = time.Duration((0.5 + sc.rng.Float64()) * float64(d))
	time.Sleep(d)
}

// exchangeLocked performs one request/response exchange, redialing a
// poisoned connection first and arming the per-op deadline around the
// frames. The sent result reports whether any request bytes may have
// reached the server (false only when the failure preceded the write).
func (sc *shardConn) exchangeLocked(req []byte) (sent bool, resp []byte, err error) {
	if sc.conn == nil {
		conn, err := net.DialTimeout("tcp", sc.addr, sc.opts.DialTimeout)
		if err != nil {
			return false, nil, &UnavailableError{Addr: sc.addr, Stage: "dial", Err: err}
		}
		sc.conn = conn
	}
	sc.conn.SetDeadline(time.Now().Add(sc.opts.OpTimeout))
	if err := writeFrame(sc.conn, req); err != nil {
		sc.poisonLocked()
		return true, nil, &UnavailableError{Addr: sc.addr, Stage: "send", Err: err}
	}
	resp, err = readFrame(sc.conn)
	if err != nil {
		sc.poisonLocked()
		return true, nil, &UnavailableError{Addr: sc.addr, Stage: "receive", Err: err}
	}
	return true, resp, nil
}

// poisonLocked closes a desynced or dead connection so the next
// attempt redials instead of reading a stale half-frame.
func (sc *shardConn) poisonLocked() {
	if sc.conn != nil {
		sc.conn.Close()
		sc.conn = nil
	}
}

// checkResponse splits a response frame into its payload, turning a
// statusErr frame back into a Go error. Server-reported stale-lease
// failures map onto ErrStaleLease, lookup misses onto ErrNotServed,
// and transient server faults onto ErrRetryable so callers can match
// with errors.Is.
func checkResponse(resp []byte) ([]byte, error) {
	status, body, err := cutByte(resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return body, nil
	case statusStale:
		return nil, fmt.Errorf("%w: %s", ErrStaleLease, body)
	case statusMiss:
		return nil, fmt.Errorf("%w: %s", ErrNotServed, body)
	case statusRetry:
		return nil, fmt.Errorf("%w: %s", ErrRetryable, body)
	case statusErr:
		return nil, errors.New(string(body))
	default:
		return nil, fmt.Errorf("netstore: unexpected response status 0x%02x", status)
	}
}

// Get fetches partition p's base state blob.
func (c *Client) Get(p uint32) ([]byte, error) {
	sc, err := c.shardFor(p)
	if err != nil {
		return nil, err
	}
	req := appendU32([]byte{opGet}, p)
	return sc.roundTrip(req)
}

// PutBase stores partition p's phase-1 state, opening a new epoch: the
// shard drops accumulated partials and revokes outstanding leases.
func (c *Client) PutBase(p uint32, blob []byte) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opPut}, p)
	req = append(req, putBase)
	req = appendU64(req, 0)
	req = append(req, blob...)
	_, err = sc.roundTrip(req)
	return err
}

// PutPartial appends one worker's accumulator partial for partition p.
// The fencing token must be a live lease — a released or revoked token
// fails with ErrStaleLease, which is what keeps a stale worker from
// clobbering state it no longer owns. Partials are keyed by token on
// the server, so a retried PUT overwrites its own first copy instead
// of duplicating it — what makes this verb safe to replay.
func (c *Client) PutPartial(p uint32, token uint64, blob []byte) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opPut}, p)
	req = append(req, putPartial)
	req = appendU64(req, token)
	req = append(req, blob...)
	_, err = sc.roundTrip(req)
	return err
}

// Lease acquires a fencing token on partition p. Leases overlap freely —
// every concurrent holder gets its own token. A retried LEASE may leak
// a token on the server; leaked tokens hold no state and the next base
// PUT revokes them.
func (c *Client) Lease(p uint32) (uint64, error) {
	sc, err := c.shardFor(p)
	if err != nil {
		return 0, err
	}
	req := appendU32([]byte{opLease}, p)
	body, err := sc.roundTrip(req)
	if err != nil {
		return 0, err
	}
	token, _, err := cutU64(body)
	return token, err
}

// Release invalidates a lease token. A retried RELEASE whose first
// attempt was applied answers ErrStaleLease — callers treat that as
// "already released".
func (c *Client) Release(p uint32, token uint64) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opRelease}, p)
	req = appendU64(req, token)
	_, err = sc.roundTrip(req)
	return err
}

// Reset drops the phase-4 accumulation (partials and leases) on every
// shard, keeping bases, epochs, views, and the pending queues — the
// engine's barrier before re-running a failed phase 4.
func (c *Client) Reset() error {
	for i, sc := range c.shards {
		if _, err := sc.roundTrip([]byte{opReset}); err != nil {
			return fmt.Errorf("netstore: reset shard %d: %w", i, err)
		}
	}
	return nil
}

// Collect streams every stored partition through emit in ascending
// partition id order (shard ranges are contiguous and ordered, so
// shard-order emission is id-order emission — the in-process stores'
// Collect contract). The shards are drained concurrently — scatter,
// then gather in order: each shard's spindle pays its collect reads in
// parallel with the others', which a single shared device can never
// do (servers charge the device before streaming, so client-side
// ordering never re-serializes the sleeps). Buffering is bounded —
// one in-flight item per shard plus the transport buffers, never the
// whole dataset — so the engine's bounded-memory premise survives
// collect; emit itself runs on the caller's goroutine only.
//
// A shard stream that fails mid-way is NOT retried here: emit has
// already seen a prefix, so a replay would double-emit. The caller
// (the engine's graph-assembly step) restarts the whole collect with
// a fresh sink instead.
func (c *Client) Collect(emit func(item CollectItem) error) error {
	type result struct {
		it  CollectItem
		err error
	}
	chans := make([]chan result, len(c.shards))
	for i, sc := range c.shards {
		ch := make(chan result, 1)
		chans[i] = ch
		go func(sc *shardConn, ch chan result) {
			defer close(ch)
			err := c.collectShard(sc, func(it CollectItem) error {
				ch <- result{it: it}
				return nil
			})
			if err != nil {
				ch <- result{err: err}
			}
		}(sc, ch)
	}
	// Gather in shard order. After a failure the remaining channels are
	// still drained (without emitting) so no shard goroutine leaks.
	var firstErr error
	for i, ch := range chans {
		for r := range ch {
			switch {
			case r.err != nil:
				if firstErr == nil {
					firstErr = fmt.Errorf("netstore: collect shard %d: %w", i, r.err)
				}
			case firstErr == nil:
				if err := emit(r.it); err != nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

func (c *Client) collectShard(sc *shardConn, emit func(item CollectItem) error) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn == nil {
		conn, err := net.DialTimeout("tcp", sc.addr, sc.opts.DialTimeout)
		if err != nil {
			return &UnavailableError{Addr: sc.addr, Stage: "dial", Err: err}
		}
		sc.conn = conn
	}
	sc.conn.SetDeadline(time.Now().Add(sc.opts.OpTimeout))
	if err := writeFrame(sc.conn, []byte{opCollect}); err != nil {
		sc.poisonLocked()
		return &UnavailableError{Addr: sc.addr, Stage: "send", Err: err}
	}
	for {
		// Each frame of the stream re-arms the deadline: the bound is
		// per-exchange silence, not total stream duration — a long
		// collect that keeps moving is healthy.
		sc.conn.SetDeadline(time.Now().Add(sc.opts.OpTimeout))
		resp, err := readFrame(sc.conn)
		if err != nil {
			sc.poisonLocked()
			return &UnavailableError{Addr: sc.addr, Stage: "receive", Err: err}
		}
		status, body, err := cutByte(resp)
		if err != nil {
			return err
		}
		switch status {
		case statusPart:
			it, err := decodeCollectItem(body)
			if err != nil {
				sc.poisonLocked() // desynced mid-stream; do not reuse
				return err
			}
			if err := emit(it); err != nil {
				sc.poisonLocked() // abandoning the stream desyncs the conn
				return err
			}
		case statusEnd:
			return nil
		case statusRetry:
			return fmt.Errorf("%w: %s", ErrRetryable, body)
		case statusErr:
			return errors.New(string(body))
		default:
			return fmt.Errorf("netstore: unexpected collect status 0x%02x", status)
		}
	}
}

// Clear drops the compute state on every shard (bases, partials,
// leases). Serve views, epochs, and pending updates survive — see the
// CLEAR contract in docs/PROTOCOL.md.
func (c *Client) Clear() error {
	for i, sc := range c.shards {
		if _, err := sc.roundTrip([]byte{opClear}); err != nil {
			return fmt.Errorf("netstore: clear shard %d: %w", i, err)
		}
	}
	return nil
}
