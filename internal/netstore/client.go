package netstore

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"knnpc/internal/pigraph"
)

// Client is the engine-side face of the sharded state store. It routes
// every operation to the shard owning the partition (contiguous ranges
// via pigraph.ShardRouter — the same routing layer the servers
// validate against) over one persistent TCP connection per shard.
//
// Operations on DIFFERENT shards run concurrently — that is the whole
// point of shard-per-spindle — while operations on the same shard
// serialize on its connection, mirroring how a spindle queues anyway.
// All methods are safe for concurrent use by the phase-4 prefetch and
// write-back goroutines of any number of workers.
type Client struct {
	router pigraph.ShardRouter
	shards []*shardConn
	hints  hintCache
}

type shardConn struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to one server per address; addrs[i] must be the shard
// with index i over numPartitions partitions (the order the cluster —
// or the operator — started them in).
func Dial(addrs []string, numPartitions int) (*Client, error) {
	router, err := pigraph.NewShardRouter(numPartitions, len(addrs))
	if err != nil {
		return nil, fmt.Errorf("netstore: %w", err)
	}
	c := &Client{router: router, shards: make([]*shardConn, len(addrs))}
	for i, addr := range addrs {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netstore: dial shard %d at %s: %w", i, addr, err)
		}
		c.shards[i] = &shardConn{addr: addr, conn: conn}
	}
	return c, nil
}

// NumShards reports the cluster width N.
func (c *Client) NumShards() int { return len(c.shards) }

// Close tears down every shard connection.
func (c *Client) Close() error {
	var firstErr error
	for _, sc := range c.shards {
		if sc == nil || sc.conn == nil {
			continue
		}
		if err := sc.conn.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// shardFor routes a partition to its shard connection.
func (c *Client) shardFor(p uint32) (*shardConn, error) {
	s, err := c.router.ShardOf(p)
	if err != nil {
		return nil, err
	}
	return c.shards[s], nil
}

// roundTrip sends one request frame on the shard's connection and reads
// one response frame, serialized per shard. A transport failure poisons
// the connection (closed so later calls fail fast rather than desync on
// a half-written frame).
func (sc *shardConn) roundTrip(req []byte) ([]byte, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	resp, err := sc.exchangeLocked(req)
	if err != nil {
		return nil, err
	}
	return checkResponse(resp)
}

func (sc *shardConn) exchangeLocked(req []byte) ([]byte, error) {
	if sc.conn == nil {
		return nil, fmt.Errorf("netstore: shard %s connection is down", sc.addr)
	}
	if err := writeFrame(sc.conn, req); err != nil {
		sc.poisonLocked()
		return nil, fmt.Errorf("netstore: shard %s: send: %w", sc.addr, err)
	}
	resp, err := readFrame(sc.conn)
	if err != nil {
		sc.poisonLocked()
		return nil, fmt.Errorf("netstore: shard %s: receive: %w", sc.addr, err)
	}
	return resp, nil
}

func (sc *shardConn) poisonLocked() {
	if sc.conn != nil {
		sc.conn.Close()
		sc.conn = nil
	}
}

// checkResponse splits a response frame into its payload, turning a
// statusErr frame back into a Go error. Server-reported stale-lease
// failures map onto ErrStaleLease and lookup misses onto ErrNotServed
// so callers can match with errors.Is.
func checkResponse(resp []byte) ([]byte, error) {
	status, body, err := cutByte(resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case statusOK:
		return body, nil
	case statusStale:
		return nil, fmt.Errorf("%w: %s", ErrStaleLease, body)
	case statusMiss:
		return nil, fmt.Errorf("%w: %s", ErrNotServed, body)
	case statusErr:
		return nil, errors.New(string(body))
	default:
		return nil, fmt.Errorf("netstore: unexpected response status 0x%02x", status)
	}
}

// Get fetches partition p's base state blob.
func (c *Client) Get(p uint32) ([]byte, error) {
	sc, err := c.shardFor(p)
	if err != nil {
		return nil, err
	}
	req := appendU32([]byte{opGet}, p)
	return sc.roundTrip(req)
}

// PutBase stores partition p's phase-1 state, opening a new epoch: the
// shard drops accumulated partials and revokes outstanding leases.
func (c *Client) PutBase(p uint32, blob []byte) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opPut}, p)
	req = append(req, putBase)
	req = appendU64(req, 0)
	req = append(req, blob...)
	_, err = sc.roundTrip(req)
	return err
}

// PutPartial appends one worker's accumulator partial for partition p.
// The fencing token must be a live lease — a released or revoked token
// fails with ErrStaleLease, which is what keeps a stale worker from
// clobbering state it no longer owns.
func (c *Client) PutPartial(p uint32, token uint64, blob []byte) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opPut}, p)
	req = append(req, putPartial)
	req = appendU64(req, token)
	req = append(req, blob...)
	_, err = sc.roundTrip(req)
	return err
}

// Lease acquires a fencing token on partition p. Leases overlap freely —
// every concurrent holder gets its own token.
func (c *Client) Lease(p uint32) (uint64, error) {
	sc, err := c.shardFor(p)
	if err != nil {
		return 0, err
	}
	req := appendU32([]byte{opLease}, p)
	body, err := sc.roundTrip(req)
	if err != nil {
		return 0, err
	}
	token, _, err := cutU64(body)
	return token, err
}

// Release invalidates a lease token.
func (c *Client) Release(p uint32, token uint64) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opRelease}, p)
	req = appendU64(req, token)
	_, err = sc.roundTrip(req)
	return err
}

// Collect streams every stored partition through emit in ascending
// partition id order (shard ranges are contiguous and ordered, so
// shard-order emission is id-order emission — the in-process stores'
// Collect contract). The shards are drained concurrently — scatter,
// then gather in order: each shard's spindle pays its collect reads in
// parallel with the others', which a single shared device can never
// do (servers charge the device before streaming, so client-side
// ordering never re-serializes the sleeps). Buffering is bounded —
// one in-flight item per shard plus the transport buffers, never the
// whole dataset — so the engine's bounded-memory premise survives
// collect; emit itself runs on the caller's goroutine only.
func (c *Client) Collect(emit func(item CollectItem) error) error {
	type result struct {
		it  CollectItem
		err error
	}
	chans := make([]chan result, len(c.shards))
	for i, sc := range c.shards {
		ch := make(chan result, 1)
		chans[i] = ch
		go func(sc *shardConn, ch chan result) {
			defer close(ch)
			err := c.collectShard(sc, func(it CollectItem) error {
				ch <- result{it: it}
				return nil
			})
			if err != nil {
				ch <- result{err: err}
			}
		}(sc, ch)
	}
	// Gather in shard order. After a failure the remaining channels are
	// still drained (without emitting) so no shard goroutine leaks.
	var firstErr error
	for i, ch := range chans {
		for r := range ch {
			switch {
			case r.err != nil:
				if firstErr == nil {
					firstErr = fmt.Errorf("netstore: collect shard %d: %w", i, r.err)
				}
			case firstErr == nil:
				if err := emit(r.it); err != nil {
					firstErr = err
				}
			}
		}
	}
	return firstErr
}

func (c *Client) collectShard(sc *shardConn, emit func(item CollectItem) error) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn == nil {
		return fmt.Errorf("netstore: shard %s connection is down", sc.addr)
	}
	if err := writeFrame(sc.conn, []byte{opCollect}); err != nil {
		sc.poisonLocked()
		return err
	}
	for {
		resp, err := readFrame(sc.conn)
		if err != nil {
			sc.poisonLocked()
			return err
		}
		status, body, err := cutByte(resp)
		if err != nil {
			return err
		}
		switch status {
		case statusPart:
			it, err := decodeCollectItem(body)
			if err != nil {
				sc.poisonLocked() // desynced mid-stream; do not reuse
				return err
			}
			if err := emit(it); err != nil {
				sc.poisonLocked() // abandoning the stream desyncs the conn
				return err
			}
		case statusEnd:
			return nil
		case statusErr:
			return errors.New(string(body))
		default:
			return fmt.Errorf("netstore: unexpected collect status 0x%02x", status)
		}
	}
}

// Clear drops the compute state on every shard (bases, partials,
// leases). Serve views, epochs, and pending updates survive — see the
// CLEAR contract in docs/PROTOCOL.md.
func (c *Client) Clear() error {
	for i, sc := range c.shards {
		if _, err := sc.roundTrip([]byte{opClear}); err != nil {
			return fmt.Errorf("netstore: clear shard %d: %w", i, err)
		}
	}
	return nil
}
