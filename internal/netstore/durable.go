package netstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Shard durability: a snapshot + journal pair under ServerConfig's
// DataDir, documented byte-for-byte in docs/PROTOCOL.md ("Snapshot and
// journal format").
//
// Every applied mutation appends one journal record while the state
// mutex is still held, so journal order IS application order and
// replay can never invert two racing writes. A snapshot is cut at
// every commit marker (a staleness publish — the last write of an
// engine iteration) and whenever the journal outgrows its threshold;
// cutting a snapshot atomically truncates the journal under the same
// mutex, so the pair always composes to exactly the current state.
//
// Recovery = decode snapshot, replay journal, truncate a torn tail
// (the shape a mid-append crash leaves), then revoke every lease:
// leases are deliberately volatile, so the restart itself fences every
// pre-crash worker — their tokens are gone, their write-backs answer
// ErrStaleLease, and the engine re-leases through its retry path.
//
// Durability is against process death (kill -9): writes reach the
// kernel on every record — there is no user-space buffering — but no
// fsync is issued, so host-machine crashes are out of scope.

// Journal record kinds (first payload byte of each journal frame).
const (
	recPut      = 0x01 // u32 partition, kind byte, u64 token, blob
	recLease    = 0x02 // u32 partition, u64 token (token monotonicity only)
	recClear    = 0x03 // no body
	recReset    = 0x04 // no body
	recPushUpd  = 0x05 // encoded update batch
	recAddUser  = 0x06 // u32 user, profile blob
	recDelUser  = 0x07 // u32 user
	recDrainUpd = 0x08 // no body
	recDrainMut = 0x09 // no body
)

// snapshotMagic versions the snapshot encoding.
var snapshotMagic = []byte("KSN1")

// journalThreshold is the journal size past which the next mutation
// cuts a snapshot even without a commit marker.
const journalThreshold = 4 << 20

// durableStore owns a shard's snapshot + journal files. Appends and
// snapshot cuts run under the server's state mutex (see server.go), so
// the store needs no locking of its own.
type durableStore struct {
	dir     string
	journal *os.File
	size    int64
}

func (d *durableStore) snapshotPath() string { return filepath.Join(d.dir, "snapshot") }
func (d *durableStore) journalPath() string  { return filepath.Join(d.dir, "journal") }

func (d *durableStore) close() {
	if d.journal != nil {
		d.journal.Close()
		d.journal = nil
	}
}

// logRecordLocked appends one journal record; caller holds s.mu. A nil
// durable store (no DataDir) journals nothing.
func (s *Server) logRecordLocked(kind byte, body []byte) error {
	d := s.durable
	if d == nil {
		return nil
	}
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, kind)
	payload = append(payload, body...)
	if err := writeFrame(d.journal, payload); err != nil {
		return fmt.Errorf("netstore: journal append: %w", err)
	}
	d.size += int64(4 + len(payload))
	return nil
}

// maybeSnapshotLocked cuts a snapshot when forced (a commit marker) or
// when the journal passed its growth threshold; caller holds s.mu. The
// write order — temp file, rename over the old snapshot, truncate the
// journal — keeps some consistent (snapshot, journal) pair on disk at
// every instant, so a crash anywhere inside recovers exactly.
func (s *Server) maybeSnapshotLocked(force bool) error {
	d := s.durable
	if d == nil || (!force && d.size < journalThreshold) {
		return nil
	}
	state := s.encodeStateLocked()
	tmp := d.snapshotPath() + ".tmp"
	if err := os.WriteFile(tmp, state, 0o644); err != nil {
		return fmt.Errorf("netstore: snapshot write: %w", err)
	}
	if err := os.Rename(tmp, d.snapshotPath()); err != nil {
		return fmt.Errorf("netstore: snapshot install: %w", err)
	}
	if err := d.journal.Truncate(0); err != nil {
		return fmt.Errorf("netstore: journal truncate: %w", err)
	}
	// Truncate moves the size, not the fd's offset: without the seek
	// the next append would land at the old offset and leave a
	// zero-filled hole at the front of the journal, which replay would
	// read as a garbage record.
	if _, err := d.journal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("netstore: journal rewind: %w", err)
	}
	d.size = 0
	return nil
}

// recover loads dir's snapshot and journal into the (pre-listen, still
// single-goroutine) server, truncates any torn journal tail, revokes
// every lease, and leaves the journal open for appending.
func (s *Server) recover(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	d := &durableStore{dir: dir}
	if snap, err := os.ReadFile(d.snapshotPath()); err == nil {
		if err := s.restoreState(snap); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	f, err := os.OpenFile(d.journalPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	good, replayErr := s.replayJournal(f)
	if replayErr != nil {
		f.Close()
		return fmt.Errorf("journal: %w", replayErr)
	}
	// A torn tail is the expected shape of a mid-append crash: the
	// record was never acknowledged, so dropping it is correct. Cut the
	// file back to the last whole record and append from there.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	d.journal = f
	d.size = good
	s.durable = d
	// The fencing: every pre-crash lease dies with the restart.
	s.leases = make(map[uint32]map[uint64]struct{})
	return nil
}

// replayJournal applies every whole record in order and reports the
// offset after the last one. Truncation-shaped read failures mark the
// torn tail; a record that decodes but cannot apply is real corruption
// and fails recovery loudly.
func (s *Server) replayJournal(f *os.File) (good int64, err error) {
	for {
		payload, rerr := readFrame(f)
		if rerr != nil {
			if rerr == io.EOF || errors.Is(rerr, io.ErrUnexpectedEOF) {
				return good, nil
			}
			// readFrame's length-bound failure means a torn length
			// prefix read as garbage — also a tail to cut.
			return good, nil
		}
		if len(payload) == 0 {
			// A zero-length frame is never written (every record
			// carries at least its kind byte); all-zero bytes are the
			// shape of a hole or preallocated tail — cut there.
			return good, nil
		}
		if aerr := s.applyRecord(payload); aerr != nil {
			return good, aerr
		}
		good += int64(4 + len(payload))
	}
}

// applyRecord applies one journal record during replay. Fencing checks
// are bypassed: a journaled record was admitted when first applied, so
// its replay is correct by construction (and the lease map it was
// checked against is rebuilt by the same replay order).
func (s *Server) applyRecord(payload []byte) error {
	kind, body, err := cutByte(payload)
	if err != nil {
		return err
	}
	switch kind {
	case recPut:
		p, rest, err := cutU32(body)
		if err != nil {
			return err
		}
		putKind, rest, err := cutByte(rest)
		if err != nil {
			return err
		}
		token, blob, err := cutU64(rest)
		if err != nil {
			return err
		}
		return s.applyPut(p, putKind, token, append([]byte(nil), blob...))
	case recLease:
		_, rest, err := cutU32(body)
		if err != nil {
			return err
		}
		token, _, err := cutU64(rest)
		if err != nil {
			return err
		}
		if token > s.nextToken {
			s.nextToken = token
		}
		return nil
	case recClear:
		s.base = make(map[uint32][]byte)
		s.partials = make(map[uint32]map[uint64][]byte)
		s.leases = make(map[uint32]map[uint64]struct{})
		return nil
	case recReset:
		s.partials = make(map[uint32]map[uint64][]byte)
		s.leases = make(map[uint32]map[uint64]struct{})
		return nil
	case recPushUpd:
		s.updates = append(s.updates, append([]byte(nil), body...))
		return nil
	case recAddUser:
		u, blob, err := cutU32(body)
		if err != nil {
			return err
		}
		delete(s.tombstones, u)
		if s.ownsUser(u) {
			s.mutations = append(s.mutations, EncodeMutations([]Mutation{{Op: MutAdd, User: u, Profile: append([]byte(nil), blob...)}}))
		}
		return nil
	case recDelUser:
		u, _, err := cutU32(body)
		if err != nil {
			return err
		}
		s.tombstones[u] = struct{}{}
		if s.ownsUser(u) {
			s.mutations = append(s.mutations, EncodeMutations([]Mutation{{Op: MutDel, User: u}}))
		}
		return nil
	case recDrainUpd:
		s.updates = nil
		return nil
	case recDrainMut:
		s.mutations = nil
		return nil
	default:
		return fmt.Errorf("unknown journal record kind 0x%02x", kind)
	}
}

// applyPut is put()'s state transition without fencing, journaling, or
// device charges — the replay path.
func (s *Server) applyPut(p uint32, kind byte, token uint64, stored []byte) error {
	switch kind {
	case putBase:
		s.base[p] = stored
		delete(s.partials, p)
		delete(s.leases, p)
		s.epochs[p]++
	case putPartial:
		if s.partials[p] == nil {
			s.partials[p] = make(map[uint64][]byte)
		}
		s.partials[p][token] = stored
	case putView, putDeltaView:
		entries, err := DecodeView(stored)
		if err != nil {
			return fmt.Errorf("view of partition %d: %w", p, err)
		}
		viewIdx := make(map[uint32]ViewEntry, len(entries))
		for _, e := range entries {
			viewIdx[e.User] = e
		}
		if kind == putDeltaView {
			s.epochs[p]++
		}
		s.views[p] = serveView{epoch: s.epochs[p], blob: stored, index: viewIdx}
		for u := range viewIdx {
			s.userIdx[u] = p
		}
	case putStale:
		s.staleness = stored
	default:
		return fmt.Errorf("unknown PUT kind 0x%02x", kind)
	}
	return nil
}

// encodeStateLocked serializes the shard's durable state (everything
// except leases and connection bookkeeping) in a deterministic order;
// caller holds s.mu.
func (s *Server) encodeStateLocked() []byte {
	buf := append([]byte(nil), snapshotMagic...)
	buf = appendU64(buf, s.nextToken)
	buf = appendU32(buf, uint32(len(s.staleness)))
	buf = append(buf, s.staleness...)

	eids := sortedU32Keys(len(s.epochs), func(f func(uint32)) {
		for p := range s.epochs {
			f(p)
		}
	})
	buf = appendU32(buf, uint32(len(eids)))
	for _, p := range eids {
		buf = appendU32(buf, p)
		buf = appendU64(buf, s.epochs[p])
	}

	bids := sortedU32Keys(len(s.base), func(f func(uint32)) {
		for p := range s.base {
			f(p)
		}
	})
	buf = appendU32(buf, uint32(len(bids)))
	for _, p := range bids {
		buf = appendU32(buf, p)
		buf = appendU32(buf, uint32(len(s.base[p])))
		buf = append(buf, s.base[p]...)
	}

	pids := sortedU32Keys(len(s.partials), func(f func(uint32)) {
		for p := range s.partials {
			f(p)
		}
	})
	buf = appendU32(buf, uint32(len(pids)))
	for _, p := range pids {
		byToken := s.partials[p]
		tokens := make([]uint64, 0, len(byToken))
		for t := range byToken {
			tokens = append(tokens, t)
		}
		sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
		buf = appendU32(buf, p)
		buf = appendU32(buf, uint32(len(tokens)))
		for _, t := range tokens {
			buf = appendU64(buf, t)
			buf = appendU32(buf, uint32(len(byToken[t])))
			buf = append(buf, byToken[t]...)
		}
	}

	vids := sortedU32Keys(len(s.views), func(f func(uint32)) {
		for p := range s.views {
			f(p)
		}
	})
	buf = appendU32(buf, uint32(len(vids)))
	for _, p := range vids {
		v := s.views[p]
		buf = appendU32(buf, p)
		buf = appendU64(buf, v.epoch)
		buf = appendU32(buf, uint32(len(v.blob)))
		buf = append(buf, v.blob...)
	}

	tids := sortedU32Keys(len(s.tombstones), func(f func(uint32)) {
		for u := range s.tombstones {
			f(u)
		}
	})
	buf = appendU32(buf, uint32(len(tids)))
	for _, u := range tids {
		buf = appendU32(buf, u)
	}

	buf = appendU32(buf, uint32(len(s.updates)))
	for _, b := range s.updates {
		buf = appendU32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	buf = appendU32(buf, uint32(len(s.mutations)))
	for _, b := range s.mutations {
		buf = appendU32(buf, uint32(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// sortedU32Keys collects keys through the visit callback and sorts
// them — the deterministic-iteration helper the snapshot encoder uses
// over every map (knnlint's maporder rule in spirit: no map range
// order ever reaches the encoding).
func sortedU32Keys(n int, visit func(func(uint32))) []uint32 {
	ids := make([]uint32, 0, n)
	visit(func(id uint32) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// restoreState decodes a snapshot into the server's maps, rebuilding
// the derived view indexes.
func (s *Server) restoreState(data []byte) error {
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return fmt.Errorf("bad snapshot magic")
	}
	buf := data[len(snapshotMagic):]
	var err error
	if s.nextToken, buf, err = cutU64(buf); err != nil {
		return err
	}
	var n uint32
	cutBlob := func() ([]byte, error) {
		var size uint32
		if size, buf, err = cutU32(buf); err != nil {
			return nil, err
		}
		if uint64(size) > uint64(len(buf)) {
			return nil, fmt.Errorf("snapshot blob claims %d bytes over %d", size, len(buf))
		}
		blob := append([]byte(nil), buf[:size]...)
		buf = buf[size:]
		return blob, nil
	}
	if s.staleness, err = cutBlob(); err != nil {
		return err
	}
	if len(s.staleness) == 0 {
		s.staleness = nil
	}

	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var p uint32
		var e uint64
		if p, buf, err = cutU32(buf); err != nil {
			return err
		}
		if e, buf, err = cutU64(buf); err != nil {
			return err
		}
		s.epochs[p] = e
	}

	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var p uint32
		if p, buf, err = cutU32(buf); err != nil {
			return err
		}
		blob, berr := cutBlob()
		if berr != nil {
			return berr
		}
		s.base[p] = blob
	}

	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var p, nt uint32
		if p, buf, err = cutU32(buf); err != nil {
			return err
		}
		if nt, buf, err = cutU32(buf); err != nil {
			return err
		}
		byToken := make(map[uint64][]byte, nt)
		for j := uint32(0); j < nt; j++ {
			var t uint64
			if t, buf, err = cutU64(buf); err != nil {
				return err
			}
			blob, berr := cutBlob()
			if berr != nil {
				return berr
			}
			byToken[t] = blob
		}
		s.partials[p] = byToken
	}

	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var p uint32
		var epoch uint64
		if p, buf, err = cutU32(buf); err != nil {
			return err
		}
		if epoch, buf, err = cutU64(buf); err != nil {
			return err
		}
		blob, berr := cutBlob()
		if berr != nil {
			return berr
		}
		entries, derr := DecodeView(blob)
		if derr != nil {
			return fmt.Errorf("view of partition %d: %w", p, derr)
		}
		viewIdx := make(map[uint32]ViewEntry, len(entries))
		for _, e := range entries {
			viewIdx[e.User] = e
		}
		s.views[p] = serveView{epoch: epoch, blob: blob, index: viewIdx}
		for u := range viewIdx {
			s.userIdx[u] = p
		}
	}

	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		var u uint32
		if u, buf, err = cutU32(buf); err != nil {
			return err
		}
		s.tombstones[u] = struct{}{}
	}

	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		blob, berr := cutBlob()
		if berr != nil {
			return berr
		}
		s.updates = append(s.updates, blob)
	}
	if n, buf, err = cutU32(buf); err != nil {
		return err
	}
	for i := uint32(0); i < n; i++ {
		blob, berr := cutBlob()
		if berr != nil {
			return berr
		}
		s.mutations = append(s.mutations, blob)
	}
	if len(buf) != 0 {
		return fmt.Errorf("snapshot has %d trailing bytes", len(buf))
	}
	return nil
}
