package netstore

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastOpts keeps fault-injection tests quick: one attempt, tight
// deadlines — the classification is under test, not the retry ladder.
var fastOpts = ClientOptions{
	OpTimeout:   2 * time.Second,
	DialTimeout: time.Second,
	MaxAttempts: 1,
}

// fakeShard accepts connections in sequence and runs the matching
// script against each — the torn-frame / garbage-response injection
// endpoint a Client is pointed at. Connection i beyond the script list
// is closed immediately.
func fakeShard(t *testing.T, scripts ...func(conn net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			if i >= len(scripts) {
				conn.Close()
				continue
			}
			script := scripts[i]
			go func() {
				defer conn.Close()
				script(conn)
			}()
		}
	}()
	return ln.Addr().String()
}

// drainRequest consumes one request frame so the scripted response is
// paired with a real request.
func drainRequest(conn net.Conn) {
	_, _ = readFrame(conn)
}

// TestClientTornResponseFrame: a response cut mid-payload surfaces as
// a classified transport error (io.ErrUnexpectedEOF under
// ErrUnavailable), not a hang or a garbage decode.
func TestClientTornResponseFrame(t *testing.T) {
	addr := fakeShard(t, func(conn net.Conn) {
		drainRequest(conn)
		// Announce 100 payload bytes, deliver 3, die.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 100)
		conn.Write(hdr[:])
		conn.Write([]byte{statusOK, 0xAA, 0xBB})
	})
	client, err := DialOptions([]string{addr}, 4, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	_, err = client.Get(0)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("torn frame surfaced as %v, want io.ErrUnexpectedEOF", err)
	}
	if !errors.Is(err, ErrUnavailable) || !IsTransient(err) {
		t.Fatalf("torn frame not classified transient: %v", err)
	}
}

// TestClientReconnectsAfterTornFrame: the connection a torn frame
// poisoned is redialed transparently — the next attempt reaches a
// healthy endpoint and succeeds, with no client rebuild.
func TestClientReconnectsAfterTornFrame(t *testing.T) {
	addr := fakeShard(t,
		func(conn net.Conn) {
			drainRequest(conn)
			var hdr [4]byte
			binary.BigEndian.PutUint32(hdr[:], 100)
			conn.Write(hdr[:]) // torn: header only, then close
		},
		func(conn net.Conn) {
			drainRequest(conn)
			writeFrame(conn, append([]byte{statusOK}, "healed"...))
		},
	)
	opts := fastOpts
	opts.MaxAttempts = 3
	opts.BackoffBase = time.Millisecond
	opts.BackoffMax = 5 * time.Millisecond
	client, err := DialOptions([]string{addr}, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	got, err := client.Get(0)
	if err != nil || string(got) != "healed" {
		t.Fatalf("reconnect after torn frame: %q, %v", got, err)
	}
}

// TestClientOversizedFrame: a corrupt length prefix beyond the frame
// bound is rejected before any allocation.
func TestClientOversizedFrame(t *testing.T) {
	addr := fakeShard(t, func(conn net.Conn) {
		drainRequest(conn)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
		conn.Write(hdr[:])
	})
	client, err := DialOptions([]string{addr}, 4, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Get(0); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame accepted: %v", err)
	}
}

// TestClientShortResponsePayload: a well-framed but semantically short
// response (LEASE with no token bytes) errors instead of panicking.
func TestClientShortResponsePayload(t *testing.T) {
	addr := fakeShard(t, func(conn net.Conn) {
		drainRequest(conn)
		writeFrame(conn, []byte{statusOK}) // LEASE response missing its token
	})
	client, err := Dial([]string{addr}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Lease(0); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("short lease payload accepted: %v", err)
	}
}

// TestServerSurvivesTornRequest: a client that dies mid-frame (or sends
// garbage) costs the server that connection only — the next client is
// served normally, with state intact.
func TestServerSurvivesTornRequest(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Shard: 0, Shards: 1, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	good, err := Dial([]string{srv.Addr()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.PutBase(2, []byte("keep")); err != nil {
		t.Fatal(err)
	}

	for _, torn := range [][]byte{
		{0x00, 0x00, 0x00, 0x10, 0x01},       // announces 16 bytes, sends 1
		{0x00, 0x00},                         // dies inside the length prefix
		{0x00, 0x00, 0x00, 0x01, 0xFF},       // unknown opcode
		{0x7F, 0xFF, 0xFF, 0xFF},             // absurd length prefix
		{0x00, 0x00, 0x00, 0x02, opGet},      // GET with a truncated partition id
		{0x00, 0x00, 0x00, 0x05, opLease, 0}, // LEASE with 1 of 4 id bytes... then dies
	} {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(torn)
		conn.Close()
	}
	// Give the handlers a beat to hit their read errors.
	time.Sleep(20 * time.Millisecond)

	got, err := good.Get(2)
	if err != nil || string(got) != "keep" {
		t.Fatalf("server state after torn requests: %q, %v", got, err)
	}
}

// TestServerDiesMidStream: closing the server while a client holds a
// connection turns in-flight and later calls into prompt errors.
func TestServerDiesMidStream(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Shard: 0, Shards: 1, NumPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial([]string{srv.Addr()}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.PutBase(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(0); err == nil {
		t.Fatal("Get against a dead shard succeeded")
	}
	if _, err := client.Lease(0); err == nil {
		t.Fatal("Lease against a dead shard succeeded")
	}
}

// TestServerRejectsMisroutedPartition: a partition outside the shard's
// contiguous range is refused in-band (the connection survives).
func TestServerRejectsMisroutedPartition(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Shard: 0, Shards: 2, NumPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Shard 0 of 2 over m=8 owns [0,4); partition 5 is misrouted.
	if err := writeFrame(conn, appendU32([]byte{opGet}, 5)); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp[0] != statusErr || !strings.Contains(string(resp[1:]), "outside shard") {
		t.Fatalf("misrouted GET answered %v %q", resp[0], resp[1:])
	}
	// The connection is still usable for a correctly routed request.
	if err := writeFrame(conn, appendU32([]byte{opLease}, 2)); err != nil {
		t.Fatal(err)
	}
	if resp, err = readFrame(conn); err != nil {
		t.Fatal(err)
	}
	if resp[0] != statusErr { // no state stored yet — but in-band, not a hangup
		t.Fatalf("lease on empty partition answered status %v", resp[0])
	}
}

// flakyProxy forwards whole frames between a client and a real shard,
// and kills the link — current connections and all future ones — when
// trip() fires. Used by the engine-level injection tests to take a
// shard down deterministically mid-phase-4.
type flakyProxy struct {
	ln      net.Listener
	backend string
	broken  atomic.Bool
	// tripAfterLeases > 0 arms an automatic trip after that many LEASE
	// request frames have been forwarded.
	tripAfterLeases int64
	leases          atomic.Int64
}

func newFlakyProxy(t *testing.T, backend string, tripAfterLeases int64) *flakyProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{ln: ln, backend: backend, tripAfterLeases: tripAfterLeases}
	go p.acceptLoop()
	t.Cleanup(func() { ln.Close() })
	return p
}

func (p *flakyProxy) Addr() string { return p.ln.Addr().String() }
func (p *flakyProxy) trip()        { p.broken.Store(true) }
func (p *flakyProxy) heal()        { p.broken.Store(false) }

func (p *flakyProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.broken.Load() {
			conn.Close()
			continue
		}
		go p.serve(conn)
	}
}

func (p *flakyProxy) serve(client net.Conn) {
	defer client.Close()
	backend, err := net.Dial("tcp", p.backend)
	if err != nil {
		return
	}
	defer backend.Close()
	done := make(chan struct{})
	// Responses stream back unframed; requests are re-framed so the
	// proxy can count LEASE frames and cut the link between requests.
	go func() {
		defer close(done)
		io.Copy(client, backend)
	}()
	for {
		if p.broken.Load() {
			return
		}
		frame, err := readFrame(client)
		if err != nil {
			return
		}
		if len(frame) > 0 && frame[0] == opLease && p.tripAfterLeases > 0 {
			if p.leases.Add(1) > p.tripAfterLeases {
				p.trip()
				return
			}
		}
		if err := writeFrame(backend, frame); err != nil {
			return
		}
	}
}

// TestFlakyProxyForwardsThenTrips: sanity-check the injection harness
// itself — a tripped proxy refuses new work and a healed one serves
// again (through a fresh client; the old connections died with it).
func TestFlakyProxyForwardsThenTrips(t *testing.T) {
	srv, err := NewServer(ServerConfig{Addr: "127.0.0.1:0", Shard: 0, Shards: 1, NumPartitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	proxy := newFlakyProxy(t, srv.Addr(), 0)

	client, err := Dial([]string{proxy.Addr()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutBase(0, []byte("via-proxy")); err != nil {
		t.Fatal(err)
	}
	proxy.trip()
	if _, err := client.Get(0); err == nil {
		t.Fatal("Get through a tripped proxy succeeded")
	}
	client.Close()

	proxy.heal()
	healed, err := Dial([]string{proxy.Addr()}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer healed.Close()
	got, err := healed.Get(0)
	if err != nil || string(got) != "via-proxy" {
		t.Fatalf("healed proxy: %q, %v", got, err)
	}
}

// TestDecodeCollectItemBoundsPartialCount: a corrupt partial count is
// a decode error, never an allocation the size of the lie.
func TestDecodeCollectItemBoundsPartialCount(t *testing.T) {
	buf := appendU32(nil, 7)         // partition
	buf = appendU32(buf, 0xFFFFFFFF) // claimed partial count
	buf = appendU32(buf, 0)          // base length
	if _, err := decodeCollectItem(buf); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("absurd partial count: %v", err)
	}
}
