package netstore

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"knnpc/internal/disk"
	"knnpc/internal/pigraph"
)

// ErrStaleLease is the fencing failure: a write-back carried a token
// that is not live — it was released, revoked by a new base PUT (a new
// phase-1 epoch), or never granted. The stale worker's partial is
// rejected, so it cannot clobber the current epoch's state.
var ErrStaleLease = errors.New("netstore: stale lease token")

// ErrNotServed reports a point lookup for a user that no serve view on
// the queried shard contains — either the user lives on another shard,
// or no view has been published yet. The serving tier treats it as a
// routing miss, not a failure: try the next shard.
var ErrNotServed = errors.New("netstore: user not in any served view")

// serveView is one partition's committed read state: the view blob as
// published, the epoch it was stamped with, and the per-user decode the
// point lookups answer from.
type serveView struct {
	epoch uint64
	blob  []byte
	index map[uint32]ViewEntry
}

// ServerConfig describes one state-store shard.
type ServerConfig struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral
	// loopback port).
	Addr string
	// Shard and Shards place this server in the cluster: it owns the
	// contiguous partition range pigraph.ShardRouter assigns to shard
	// index Shard of Shards.
	Shard, Shards int
	// NumPartitions is the engine's partition count m (the id space the
	// router divides).
	NumPartitions int
	// Device, when non-nil, is this shard's emulated spindle: every
	// GET/PUT/COLLECT blob access queues for it and sleeps the model's
	// time, serialized per shard — N shards emulate N independent
	// devices. Nil adds no latency.
	Device *disk.Device
	// DataDir, when non-empty, makes the shard durable: every applied
	// mutation journals to DataDir before its response is sent, a
	// snapshot is cut at each commit (staleness publish) or when the
	// journal grows past its threshold, and a restarting shard replays
	// snapshot+journal back to its pre-crash state. Leases are volatile
	// on purpose — a restart revokes them all, which is what fences the
	// pre-crash workers (see docs/PROTOCOL.md, "Snapshot and journal").
	DataDir string
	// WrapListener, when non-nil, wraps the shard's TCP listener before
	// serving starts — the seam internal/fault's injecting listener
	// plugs into without this package importing it.
	WrapListener func(net.Listener) net.Listener
}

// Server is one state-store shard: a partition-range-validated blob map
// with lease bookkeeping, serving the netstore protocol on a TCP
// listener. All state is in memory; durability across iterations is the
// engine's job (phase 1 rewrites every base blob), so the emulated
// Device is the only "disk" a shard has.
type Server struct {
	cfg    ServerConfig
	router pigraph.ShardRouter
	lo, hi int
	ln     net.Listener

	mu sync.Mutex
	// partials are keyed by the lease token that admitted them: a
	// client retrying a PUT whose response was lost overwrites its own
	// first copy instead of appending a duplicate — the property that
	// makes write-back replay safe, because TopK's collect-time merge
	// does not deduplicate.
	base       map[uint32][]byte
	partials   map[uint32]map[uint64][]byte
	leases     map[uint32]map[uint64]struct{}
	epochs     map[uint32]uint64    // bumped by every base PUT; survives CLEAR
	views      map[uint32]serveView // committed serve views; survive CLEAR
	userIdx    map[uint32]uint32    // view member → owning partition
	updates    [][]byte             // pending PUSHUPD batches; survive CLEAR
	mutations  [][]byte             // pending ADDUSER/DELUSER batches; survive CLEAR
	tombstones map[uint32]struct{}  // DELUSER'd users; lookups miss; survives CLEAR
	staleness  []byte               // last putStale document; survives CLEAR
	nextToken  uint64
	durable    *durableStore // nil without DataDir; guarded by mu for appends
	closed     bool

	connMu      sync.Mutex
	conns       map[net.Conn]struct{}
	connsClosed bool // set by Close under connMu; late-accepted conns are refused
	wg          sync.WaitGroup
}

// NewServer binds the shard's listener and starts serving in the
// background. The returned server is ready the moment this returns —
// Addr reports the bound address.
func NewServer(cfg ServerConfig) (*Server, error) {
	router, err := pigraph.NewShardRouter(cfg.NumPartitions, max(cfg.Shards, 1))
	if err != nil {
		return nil, fmt.Errorf("netstore: %w", err)
	}
	if cfg.Shard < 0 || cfg.Shard >= router.NumShards() {
		return nil, fmt.Errorf("netstore: shard index %d out of range [0,%d)", cfg.Shard, router.NumShards())
	}
	s := &Server{
		cfg:        cfg,
		router:     router,
		base:       make(map[uint32][]byte),
		partials:   make(map[uint32]map[uint64][]byte),
		leases:     make(map[uint32]map[uint64]struct{}),
		epochs:     make(map[uint32]uint64),
		views:      make(map[uint32]serveView),
		userIdx:    make(map[uint32]uint32),
		tombstones: make(map[uint32]struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	s.lo, s.hi = router.Range(cfg.Shard)
	if cfg.DataDir != "" {
		// Recover BEFORE binding the listener: no request is served
		// until the pre-crash state is fully back, and recovery ends by
		// revoking every lease — the restart itself fences workers that
		// held tokens across the crash.
		if err := s.recover(cfg.DataDir); err != nil {
			return nil, fmt.Errorf("netstore: shard %d recover from %s: %w", cfg.Shard, cfg.DataDir, err)
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		if s.durable != nil {
			s.durable.close()
		}
		return nil, fmt.Errorf("netstore: listen %s: %w", cfg.Addr, err)
	}
	if cfg.WrapListener != nil {
		ln = cfg.WrapListener(ln)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listener's address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Range reports the contiguous partition range [lo, hi) this shard owns.
func (s *Server) Range() (lo, hi int) { return s.lo, s.hi }

// Device reports the shard's emulated spindle (nil without emulation).
func (s *Server) Device() *disk.Device { return s.cfg.Device }

// Close stops the listener, tears down live connections, and waits for
// every handler to return.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.connMu.Lock()
	s.connsClosed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	if s.durable != nil {
		s.durable.close()
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		// Register under connMu while re-checking the teardown flag: a
		// connection accepted concurrently with Close must not escape the
		// teardown loop, or Close would block in wg.Wait until the peer
		// voluntarily hangs up.
		s.connMu.Lock()
		if s.connsClosed {
			s.connMu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn handles one client connection request-by-request. A torn
// frame, an unknown opcode, or a write failure ends the connection; a
// request-level failure (unknown partition, stale token) is answered
// with a statusErr frame and the connection stays up.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // disconnect or torn frame: drop the peer, keep serving others
		}
		if err := s.serveRequest(conn, req); err != nil {
			return
		}
	}
}

// serveRequest dispatches one request frame. The returned error means
// the connection itself is broken (protocol desync or a failed write);
// per-request failures are reported to the client in-band.
func (s *Server) serveRequest(conn net.Conn, req []byte) error {
	op, body, err := cutByte(req)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		// Fencing rejections and lookup misses travel as their own status
		// bytes so clients can rebuild ErrStaleLease / ErrNotServed
		// without parsing prose — the signal is protocol, not message
		// text.
		status := byte(statusErr)
		switch {
		case errors.Is(err, ErrStaleLease):
			status = statusStale
		case errors.Is(err, ErrNotServed):
			status = statusMiss
		case errors.Is(err, ErrRetryable):
			// Transient server-side faults (the injected-device class)
			// fire BEFORE any state mutates, so the client may always
			// retry — the status byte is that promise on the wire.
			status = statusRetry
		}
		return writeFrame(conn, append([]byte{status}, err.Error()...))
	}
	ok := func(payload []byte) error {
		return writeFrame(conn, append([]byte{statusOK}, payload...))
	}
	switch op {
	case opGet:
		p, _, err := cutU32(body)
		if err != nil {
			return err
		}
		blob, err := s.get(p)
		if err != nil {
			return fail(err)
		}
		return ok(blob)

	case opPut:
		p, rest, err := cutU32(body)
		if err != nil {
			return err
		}
		kind, rest, err := cutByte(rest)
		if err != nil {
			return err
		}
		token, blob, err := cutU64(rest)
		if err != nil {
			return err
		}
		if err := s.put(p, kind, token, blob); err != nil {
			return fail(err)
		}
		return ok(nil)

	case opLease:
		p, _, err := cutU32(body)
		if err != nil {
			return err
		}
		token, err := s.lease(p)
		if err != nil {
			return fail(err)
		}
		return ok(appendU64(nil, token))

	case opRelease:
		p, rest, err := cutU32(body)
		if err != nil {
			return err
		}
		token, _, err := cutU64(rest)
		if err != nil {
			return err
		}
		if err := s.release(p, token); err != nil {
			return fail(err)
		}
		return ok(nil)

	case opCollect:
		items, err := s.collect()
		if err != nil {
			return fail(err)
		}
		for _, it := range items {
			if err := writeFrame(conn, encodeCollectItem(it)); err != nil {
				return err
			}
		}
		return writeFrame(conn, []byte{statusEnd})

	case opClear:
		if err := s.clear(); err != nil {
			return fail(err)
		}
		return ok(nil)

	case opReset:
		if err := s.reset(); err != nil {
			return fail(err)
		}
		return ok(nil)

	case opEpoch:
		p, _, err := cutU32(body)
		if err != nil {
			return err
		}
		base, view, err := s.epoch(p)
		if err != nil {
			return fail(err)
		}
		return ok(appendU64(appendU64(nil, base), view))

	case opGetView:
		p, _, err := cutU32(body)
		if err != nil {
			return err
		}
		epoch, blob, err := s.getView(p)
		if err != nil {
			return fail(err)
		}
		return ok(append(appendU64(nil, epoch), blob...))

	case opNeighbors:
		u, _, err := cutU32(body)
		if err != nil {
			return err
		}
		epoch, entry, err := s.lookup(u)
		if err != nil {
			return fail(err)
		}
		resp := appendU64(nil, epoch)
		resp = appendU32(resp, uint32(len(entry.Neighbors)))
		for _, id := range entry.Neighbors {
			resp = appendU32(resp, id)
		}
		return ok(resp)

	case opProfile:
		u, _, err := cutU32(body)
		if err != nil {
			return err
		}
		epoch, entry, err := s.lookup(u)
		if err != nil {
			return fail(err)
		}
		return ok(append(appendU64(nil, epoch), entry.Profile...))

	case opPushUpd:
		if err := s.pushUpdates(body); err != nil {
			return fail(err)
		}
		return ok(nil)

	case opDrainUpd:
		return ok(s.drainUpdates())

	case opAddUser:
		u, blob, err := cutU32(body)
		if err != nil {
			return err
		}
		if err := s.addUser(u, blob); err != nil {
			return fail(err)
		}
		return ok(nil)

	case opDelUser:
		u, _, err := cutU32(body)
		if err != nil {
			return err
		}
		s.delUser(u)
		return ok(nil)

	case opDrainMut:
		return ok(s.drainMutations())

	case opStaleness:
		s.mu.Lock()
		blob := s.staleness
		s.mu.Unlock()
		return ok(blob)

	default:
		return fmt.Errorf("netstore: unknown opcode 0x%02x", op)
	}
}

// ownsUser reports whether this shard is user u's mutation owner —
// shard u mod N, the same stable user-keyed mapping PUSHUPD routes by.
// ADDUSER/DELUSER broadcast to every shard (tombstones must be globally
// visible so point lookups miss immediately on whichever shard holds
// the user's view), but only the owning shard journals the mutation, so
// the engine's drain sees each mutation exactly once.
func (s *Server) ownsUser(u uint32) bool {
	return int(u)%s.router.NumShards() == s.cfg.Shard
}

// addUser clears user u's tombstone (a re-add resurrects the id) and,
// on u's owning shard, enqueues a MutAdd record carrying the profile
// blob for the engine's next delta pass.
func (s *Server) addUser(u uint32, profileBlob []byte) error {
	batch := EncodeMutations([]Mutation{{Op: MutAdd, User: u, Profile: profileBlob}})
	s.mu.Lock()
	delete(s.tombstones, u)
	owner := s.ownsUser(u)
	if owner {
		s.mutations = append(s.mutations, batch)
	}
	jerr := s.logRecordLocked(recAddUser, append(appendU32(nil, u), profileBlob...))
	s.mu.Unlock()
	if owner {
		s.cfg.Device.Append(int64(len(batch)))
	}
	return jerr
}

// delUser tombstones user u — point lookups on this shard miss
// immediately, before any delta commit — and, on u's owning shard,
// enqueues a MutDel record for the engine's next delta pass.
func (s *Server) delUser(u uint32) {
	batch := EncodeMutations([]Mutation{{Op: MutDel, User: u}})
	s.mu.Lock()
	s.tombstones[u] = struct{}{}
	owner := s.ownsUser(u)
	if owner {
		s.mutations = append(s.mutations, batch)
	}
	s.logRecordLocked(recDelUser, appendU32(nil, u))
	s.mu.Unlock()
	if owner {
		s.cfg.Device.Append(int64(len(batch)))
	}
}

// drainMutations returns the concatenated pending mutation batches (in
// arrival order) and clears the queue — same shape as drainUpdates:
// each batch length-prefixed, charged as one sequential read.
func (s *Server) drainMutations() []byte {
	s.mu.Lock()
	batches := s.mutations
	s.mutations = nil
	s.logRecordLocked(recDrainMut, nil)
	s.mu.Unlock()
	var out []byte
	var volume int64
	for _, b := range batches {
		out = appendU32(out, uint32(len(b)))
		out = append(out, b...)
		volume += int64(len(b))
	}
	if volume > 0 {
		s.cfg.Device.Read(volume)
	}
	return out
}

// checkRange validates shard ownership — the router is the only
// directory; a misrouted request is a client bug surfaced loudly.
func (s *Server) checkRange(p uint32) error {
	if int(p) < s.lo || int(p) >= s.hi {
		return fmt.Errorf("netstore: partition %d outside shard %d/%d range [%d,%d)",
			p, s.cfg.Shard, s.router.NumShards(), s.lo, s.hi)
	}
	return nil
}

// faultGate consults the shard's device fault hook before an op reads
// or mutates state. A gated failure maps onto ErrRetryable — and
// because the gate fires before any mutation, the retry promise the
// status byte makes is structurally true.
func (s *Server) faultGate(kind disk.AccessKind, n int64) error {
	if err := s.cfg.Device.Fault(kind, n); err != nil {
		return fmt.Errorf("%w: %v", ErrRetryable, err)
	}
	return nil
}

func (s *Server) get(p uint32) ([]byte, error) {
	if err := s.checkRange(p); err != nil {
		return nil, err
	}
	if err := s.faultGate(disk.AccessRead, 0); err != nil {
		return nil, err
	}
	s.mu.Lock()
	blob, okB := s.base[p]
	s.mu.Unlock()
	if !okB {
		return nil, fmt.Errorf("netstore: partition %d has no stored state", p)
	}
	// The spindle is charged outside the state mutex: the device
	// serializes itself, and holding s.mu through a modeled sleep would
	// needlessly block lease bookkeeping of other partitions.
	s.cfg.Device.Read(int64(len(blob)))
	return blob, nil
}

func (s *Server) put(p uint32, kind byte, token uint64, blob []byte) error {
	if err := s.checkRange(p); err != nil {
		return err
	}
	switch kind {
	case putBase:
		if err := s.faultGate(disk.AccessWrite, int64(len(blob))); err != nil {
			return err
		}
	case putPartial, putView, putDeltaView:
		if err := s.faultGate(disk.AccessAppend, int64(len(blob))); err != nil {
			return err
		}
	case putStale:
		// Pure metadata, never charged to the device — so no injected
		// device fault either; an unknown kind fails in the state
		// switch below.
	}
	stored := append([]byte(nil), blob...)
	var viewIdx map[uint32]ViewEntry
	if kind == putView || kind == putDeltaView {
		// Decode outside the state mutex — a view covers a whole
		// partition's membership and lookups should not stall on it.
		entries, err := DecodeView(stored)
		if err != nil {
			return fmt.Errorf("netstore: view of partition %d: %w", p, err)
		}
		viewIdx = make(map[uint32]ViewEntry, len(entries))
		for _, e := range entries {
			viewIdx[e.User] = e
		}
	}
	s.mu.Lock()
	switch kind {
	case putBase:
		// A base PUT opens a new epoch for the partition: partials from
		// the previous iteration are dropped, every outstanding lease
		// is revoked — so a zombie worker's later write-back fails the
		// fencing check instead of contaminating the fresh state — and
		// the partition's epoch counter advances, which is what lets
		// read replicas detect that their cached view is stale.
		s.base[p] = stored
		delete(s.partials, p)
		delete(s.leases, p)
		s.epochs[p]++
	case putPartial:
		if _, live := s.leases[p][token]; !live {
			s.mu.Unlock()
			return fmt.Errorf("%w: partition %d token %d", ErrStaleLease, p, token)
		}
		if s.partials[p] == nil {
			s.partials[p] = make(map[uint64][]byte)
		}
		s.partials[p][token] = stored
	case putView:
		// The committed serve view, stamped with the partition's current
		// epoch (the one the publishing iteration's base PUT opened).
		// Installed atomically — a point lookup sees the old complete
		// view or the new complete view, never a mix.
		s.views[p] = serveView{epoch: s.epochs[p], blob: stored, index: viewIdx}
		for u := range viewIdx {
			s.userIdx[u] = p
		}
	case putDeltaView:
		// A delta republish: no base install opened a new epoch, so the
		// PUT itself bumps the counter and stamps the view with the new
		// value — that moved stamp is what makes replicas re-pull.
		// Compute state (base, partials, leases) is untouched.
		s.epochs[p]++
		s.views[p] = serveView{epoch: s.epochs[p], blob: stored, index: viewIdx}
		for u := range viewIdx {
			s.userIdx[u] = p
		}
	case putStale:
		s.staleness = stored
	default:
		s.mu.Unlock()
		return fmt.Errorf("netstore: unknown PUT kind 0x%02x", kind)
	}
	// Journal the applied PUT while still holding the state mutex, so
	// journal order IS application order — replay cannot invert two
	// racing writes. A staleness publish is the engine's per-iteration
	// commit marker, so it also cuts a snapshot.
	body := appendU32(nil, p)
	body = append(body, kind)
	body = appendU64(body, token)
	body = append(body, stored...)
	jerr := s.logRecordLocked(recPut, body)
	if jerr == nil {
		jerr = s.maybeSnapshotLocked(kind == putStale)
	}
	s.mu.Unlock()
	if jerr != nil {
		return jerr
	}
	// A base PUT installs a partition's state wherever it lives — a
	// random write. A partial — and a view publish — is a blind append
	// to the shard's journal (the log-structured write path collect's
	// per-partition read model assumes), so it pays sequential transfer
	// with no seek. A staleness publish is pure metadata, like EPOCH.
	switch kind {
	case putBase:
		s.cfg.Device.Write(int64(len(blob)))
	case putPartial, putView, putDeltaView:
		s.cfg.Device.Append(int64(len(blob)))
	case putStale:
		// metadata only — no device charge
	default:
		panic("unreachable: kind validated above")
	}
	return nil
}

// epoch reports partition p's epoch counter and the epoch stamp of its
// current serve view (0 when none is published). Epoch checks are
// metadata reads — no device charge — which is what makes a replica's
// per-read freshness probe cheap against a primary whose spindle is
// busy with phase-4 state traffic.
func (s *Server) epoch(p uint32) (base, view uint64, err error) {
	if err := s.checkRange(p); err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epochs[p], s.views[p].epoch, nil
}

// getView reads partition p's serve view, charging the shard's spindle
// for the full blob — the cost a replica pays once per epoch, where a
// primary point lookup pays a (smaller) read per request.
func (s *Server) getView(p uint32) (uint64, []byte, error) {
	if err := s.checkRange(p); err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	v, ok := s.views[p]
	s.mu.Unlock()
	if !ok {
		return 0, nil, fmt.Errorf("netstore: partition %d has no published serve view", p)
	}
	s.cfg.Device.Read(int64(len(v.blob)))
	return v.epoch, v.blob, nil
}

// lookup resolves a user's view entry across this shard's views. The
// answer is charged to the spindle as one random read of the entry's
// bytes: committed state is disk-resident in the paper's cost model, so
// point lookups on a primary contend with phase-4 state I/O — the
// queueing that read replicas exist to take off this device.
func (s *Server) lookup(u uint32) (uint64, ViewEntry, error) {
	s.mu.Lock()
	_, dead := s.tombstones[u]
	p, ok := s.userIdx[u]
	var v serveView
	var entry ViewEntry
	if ok && !dead {
		v = s.views[p]
		entry, ok = v.index[u]
	}
	s.mu.Unlock()
	if dead {
		// A tombstoned user misses immediately on the primaries, even
		// before the delta commit republishes the partition without it —
		// the DELUSER caller must never read its own deleted user back.
		return 0, ViewEntry{}, fmt.Errorf("%w: user %d tombstoned on shard %d", ErrNotServed, u, s.cfg.Shard)
	}
	if !ok {
		return 0, ViewEntry{}, fmt.Errorf("%w: user %d on shard %d", ErrNotServed, u, s.cfg.Shard)
	}
	s.cfg.Device.Read(int64(12 + 4*len(entry.Neighbors) + len(entry.Profile)))
	return v.epoch, entry, nil
}

// pushUpdates enqueues one encoded batch of profile updates for the
// engine's next phase 5. The batch is validated on arrival so a corrupt
// frame fails its sender, not the draining engine. Appending to the
// update journal is sequential — no seek.
func (s *Server) pushUpdates(blob []byte) error {
	if _, err := DecodeUpdates(blob); err != nil {
		return err
	}
	stored := append([]byte(nil), blob...)
	s.mu.Lock()
	s.updates = append(s.updates, stored)
	jerr := s.logRecordLocked(recPushUpd, stored)
	s.mu.Unlock()
	s.cfg.Device.Append(int64(len(blob)))
	return jerr
}

// drainUpdates returns the concatenated pending update batches (in
// arrival order) and clears the queue. The response payload is a
// sequence of encoded batches, each length-prefixed.
func (s *Server) drainUpdates() []byte {
	s.mu.Lock()
	batches := s.updates
	s.updates = nil
	s.logRecordLocked(recDrainUpd, nil)
	s.mu.Unlock()
	var out []byte
	var volume int64
	for _, b := range batches {
		out = appendU32(out, uint32(len(b)))
		out = append(out, b...)
		volume += int64(len(b))
	}
	if volume > 0 {
		s.cfg.Device.Read(volume)
	}
	return out
}

func (s *Server) lease(p uint32) (uint64, error) {
	if err := s.checkRange(p); err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.base[p]; !ok {
		return 0, fmt.Errorf("netstore: lease of partition %d with no stored state", p)
	}
	s.nextToken++
	token := s.nextToken
	if s.leases[p] == nil {
		s.leases[p] = make(map[uint64]struct{})
	}
	s.leases[p][token] = struct{}{}
	// Journal the grant for token monotonicity only: replay advances
	// nextToken past every token ever issued, so a restarted shard can
	// never re-grant a pre-crash token. The lease itself is volatile —
	// recovery revokes it, which is the fencing.
	if err := s.logRecordLocked(recLease, appendU64(appendU32(nil, p), token)); err != nil {
		return 0, err
	}
	return token, nil
}

func (s *Server) release(p uint32, token uint64) error {
	if err := s.checkRange(p); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, live := s.leases[p][token]; !live {
		return fmt.Errorf("%w: release of partition %d token %d", ErrStaleLease, p, token)
	}
	delete(s.leases[p], token)
	return nil
}

// collect snapshots every stored partition in ascending id order,
// charging the spindle one read per partition covering the partition's
// full volume (base plus partials): a partition's partials append to
// its log, so collecting it is one random access plus sequential
// transfer — the same one-read-per-partition cost the in-process
// store's Collect pays, never a free aggregate scan (COLLECT is the
// final read pass of phase 4, so it pays device time like any load).
// Partials emit in ascending token order — a deterministic order, but
// any order would do: they merge commutatively.
func (s *Server) collect() ([]CollectItem, error) {
	if err := s.faultGate(disk.AccessRead, 0); err != nil {
		return nil, err
	}
	s.mu.Lock()
	ids := make([]uint32, 0, len(s.base))
	for id := range s.base {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	items := make([]CollectItem, 0, len(ids))
	for _, id := range ids {
		byToken := s.partials[id]
		tokens := make([]uint64, 0, len(byToken))
		for t := range byToken {
			tokens = append(tokens, t)
		}
		sort.Slice(tokens, func(i, j int) bool { return tokens[i] < tokens[j] })
		parts := make([][]byte, 0, len(tokens))
		for _, t := range tokens {
			parts = append(parts, byToken[t])
		}
		items = append(items, CollectItem{
			Partition: id,
			Base:      s.base[id],
			Partials:  parts,
		})
	}
	s.mu.Unlock()
	for _, it := range items {
		volume := int64(len(it.Base))
		for _, p := range it.Partials {
			volume += int64(len(p))
		}
		s.cfg.Device.Read(volume)
	}
	return items, nil
}

// clear drops the compute-side state (bases, partials, leases) but
// keeps the serving side — epochs, views, user index, pending updates,
// pending mutations, tombstones, and the published staleness document.
// The engine clears the store at the end of every iteration, after the
// serve views are published; wiping them would blind the serving tier
// between iterations, and resetting epochs would let a replica mistake
// a fresh run's view for the one it already cached.
func (s *Server) clear() error {
	s.mu.Lock()
	s.base = make(map[uint32][]byte)
	s.partials = make(map[uint32]map[uint64][]byte)
	s.leases = make(map[uint32]map[uint64]struct{})
	err := s.logRecordLocked(recClear, nil)
	s.mu.Unlock()
	return err
}

// reset drops the shard's phase-4 accumulation — partials and leases —
// keeping bases, epochs, views, and the pending queues. This is the
// engine's retry barrier: a re-run of phase 4 must start from the
// phase-1 bases with nothing left over from the failed attempt, or a
// surviving partial would merge twice (TopK merge does not dedupe).
func (s *Server) reset() error {
	s.mu.Lock()
	s.partials = make(map[uint32]map[uint64][]byte)
	s.leases = make(map[uint32]map[uint64]struct{})
	err := s.logRecordLocked(recReset, nil)
	s.mu.Unlock()
	return err
}
