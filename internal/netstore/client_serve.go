package netstore

import (
	"errors"
	"fmt"
	"sync"

	"knnpc/internal/profile"
)

// The client's serving-side verbs. They share the compute client's
// shard connections but never touch leases: reads answer from the
// committed serve views (stale by design, bounded by one epoch), and
// update pushes feed the engine's phase-5 queue.
//
// Point lookups are keyed by user, and the user→partition assignment is
// an engine-side artifact that changes every iteration — no client can
// compute it. The client therefore remembers which shard answered for
// each user (a hint cache) and falls back to asking every shard in
// order on a miss; servers answer statusMiss cheaply from their
// in-memory user index, so the scatter costs network hops, not disk.

// ReadClient is the subset of Client the serving tier needs: point
// lookups and update pushes, no compute verbs. Both Client and
// ReplicaClient satisfy it.
type ReadClient interface {
	Neighbors(u uint32) (epoch uint64, ids []uint32, err error)
	ProfileBytes(u uint32) (epoch uint64, blob []byte, err error)
	PushUpdates(updates []profile.Update) error
	Close() error
}

// DialRead dials a store tier (primaries or replicas) and returns only
// the serving surface. This is the load driver's direct-client mode:
// the same lookups knnserve issues, minus the HTTP layer, so a
// comparison of the two isolates HTTP overhead from store latency.
// Note writes pushed through a replica tier will be refused — point
// updates at the primaries.
func DialRead(addrs []string, numPartitions int) (ReadClient, error) {
	return Dial(addrs, numPartitions)
}

// hintCache remembers which shard last answered for a user.
type hintCache struct {
	mu    sync.Mutex
	shard map[uint32]int
}

func (h *hintCache) get(u uint32) (int, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.shard[u]
	return s, ok
}

func (h *hintCache) put(u uint32, s int) {
	h.mu.Lock()
	if h.shard == nil {
		h.shard = make(map[uint32]int)
	}
	h.shard[u] = s
	h.mu.Unlock()
}

// Epoch reports partition p's epoch counter and the epoch stamp of its
// current serve view (0 when none is published). The base epoch moves
// the moment phase 1 of a new iteration rewrites the partition; the
// view epoch only moves when that iteration commits.
func (c *Client) Epoch(p uint32) (base, view uint64, err error) {
	sc, err := c.shardFor(p)
	if err != nil {
		return 0, 0, err
	}
	body, err := sc.roundTrip(appendU32([]byte{opEpoch}, p))
	if err != nil {
		return 0, 0, err
	}
	base, rest, err := cutU64(body)
	if err != nil {
		return 0, 0, err
	}
	view, _, err = cutU64(rest)
	return base, view, err
}

// PutView publishes partition p's committed serve view (an EncodeView
// blob). The shard stamps it with the partition's current epoch.
func (c *Client) PutView(p uint32, blob []byte) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opPut}, p)
	req = append(req, putView)
	req = appendU64(req, 0)
	req = append(req, blob...)
	_, err = sc.roundTrip(req)
	return err
}

// GetView fetches partition p's serve view blob and the epoch it was
// stamped with. This is the replica pull path; point lookups should use
// Neighbors/ProfileBytes instead.
func (c *Client) GetView(p uint32) (epoch uint64, blob []byte, err error) {
	sc, err := c.shardFor(p)
	if err != nil {
		return 0, nil, err
	}
	body, err := sc.roundTrip(appendU32([]byte{opGetView}, p))
	if err != nil {
		return 0, nil, err
	}
	epoch, blob, err = cutU64(body)
	return epoch, blob, err
}

// lookupOn issues one point-lookup op against one shard.
func (c *Client) lookupOn(s int, op byte, u uint32) ([]byte, error) {
	return c.shards[s].roundTrip(appendU32([]byte{op}, u))
}

// lookup routes a point lookup: hinted shard first, then every shard in
// order. Only ErrNotServed keeps the scatter going — a transport or
// protocol failure is reported immediately.
func (c *Client) lookup(op byte, u uint32) ([]byte, error) {
	if s, ok := c.hints.get(u); ok {
		body, err := c.lookupOn(s, op, u)
		if err == nil {
			return body, nil
		}
		if !errors.Is(err, ErrNotServed) {
			return nil, err
		}
		// The user moved shards between epochs; fall through to scatter.
	}
	for s := range c.shards {
		body, err := c.lookupOn(s, op, u)
		if err == nil {
			c.hints.put(u, s)
			return body, nil
		}
		if !errors.Is(err, ErrNotServed) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: user %d on any of %d shards", ErrNotServed, u, len(c.shards))
}

// Neighbors answers a point lookup for user u's committed KNN list and
// the epoch of the view it came from. No lease is taken — the read is
// served from the shard's immutable serve view, so it can run while
// phase 4 holds the partition's compute state.
func (c *Client) Neighbors(u uint32) (epoch uint64, ids []uint32, err error) {
	body, err := c.lookup(opNeighbors, u)
	if err != nil {
		return 0, nil, err
	}
	epoch, rest, err := cutU64(body)
	if err != nil {
		return 0, nil, err
	}
	count, rest, err := cutU32(rest)
	if err != nil {
		return 0, nil, err
	}
	if uint64(count)*4 != uint64(len(rest)) {
		return 0, nil, fmt.Errorf("netstore: neighbors response claims %d ids over %d bytes", count, len(rest))
	}
	ids = make([]uint32, count)
	for i := range ids {
		ids[i], rest, _ = cutU32(rest)
	}
	return epoch, ids, nil
}

// ProfileBytes answers a point lookup for user u's committed profile
// vector (its binary encoding) and the epoch of the view it came from.
func (c *Client) ProfileBytes(u uint32) (epoch uint64, blob []byte, err error) {
	body, err := c.lookup(opProfile, u)
	if err != nil {
		return 0, nil, err
	}
	epoch, blob, err = cutU64(body)
	return epoch, blob, err
}

// PushUpdates enqueues profile updates for the engine's next phase 5.
// Updates are routed to shard u mod N — a user-keyed assignment that is
// stable across iterations (unlike partitions), so two pushes for the
// same user land on the same shard queue and drain in push order.
func (c *Client) PushUpdates(updates []profile.Update) error {
	if len(updates) == 0 {
		return nil
	}
	n := len(c.shards)
	byShard := make([][]profile.Update, n)
	for _, upd := range updates {
		s := int(upd.User) % n
		byShard[s] = append(byShard[s], upd)
	}
	for s, batch := range byShard {
		if len(batch) == 0 {
			continue
		}
		// roundTripOnce: a replayed push could enqueue the batch twice,
		// and phase 5 applies updates in arrival order — duplicates are
		// real state, not noise.
		req := append([]byte{opPushUpd}, EncodeUpdates(batch)...)
		if _, err := c.shards[s].roundTripOnce(req); err != nil {
			return fmt.Errorf("netstore: push updates to shard %d: %w", s, err)
		}
	}
	return nil
}

// AddUser broadcasts a user add to every shard: each shard clears its
// tombstone for u (a re-add resurrects the id), and u's owning shard
// (u mod N) journals the profile for the engine's next delta pass. The
// profile blob is the opaque profile.Vector encoding.
func (c *Client) AddUser(u uint32, profileBlob []byte) error {
	req := appendU32([]byte{opAddUser}, u)
	req = append(req, profileBlob...)
	for s, sc := range c.shards {
		// roundTripOnce: a replay would journal the mutation twice on
		// the owning shard.
		if _, err := sc.roundTripOnce(req); err != nil {
			return fmt.Errorf("netstore: add user %d on shard %d: %w", u, s, err)
		}
	}
	return nil
}

// DelUser broadcasts a tombstone for user u to every shard — point
// lookups miss immediately on the primaries — and u's owning shard
// journals the removal for the engine's next delta pass. Replicas keep
// serving the stale view until the delta commit republishes the user's
// partition without it (the usual bounded staleness).
func (c *Client) DelUser(u uint32) error {
	req := appendU32([]byte{opDelUser}, u)
	for s, sc := range c.shards {
		// roundTripOnce: same double-journal hazard as AddUser.
		if _, err := sc.roundTripOnce(req); err != nil {
			return fmt.Errorf("netstore: delete user %d on shard %d: %w", u, s, err)
		}
	}
	return nil
}

// DrainMutations collects and clears every shard's pending mutation
// queue, in shard order then arrival order — per-user order holds
// because a user's mutations all journal on its owning shard. A drain
// clears each shard's journal as it answers, so on error the mutations
// collected so far are returned alongside it — the caller must keep
// them (the engine parks them on its backlog) or they are lost.
func (c *Client) DrainMutations() ([]Mutation, error) {
	var all []Mutation
	for s, sc := range c.shards {
		// roundTripOnce: a drain clears the queue as it answers, so if
		// the response is lost the data is in flight, not on the shard —
		// a blind replay would return an empty queue and the caller
		// would never learn anything was dropped.
		body, err := sc.roundTripOnce([]byte{opDrainMut})
		if err != nil {
			return all, fmt.Errorf("netstore: drain mutations from shard %d: %w", s, err)
		}
		for len(body) > 0 {
			size, rest, err := cutU32(body)
			if err != nil {
				return all, err
			}
			if uint64(size) > uint64(len(rest)) {
				return all, fmt.Errorf("netstore: drained mutation batch claims %d bytes over %d", size, len(rest))
			}
			batch, err := DecodeMutations(rest[:size])
			if err != nil {
				return all, err
			}
			all = append(all, batch...)
			body = rest[size:]
		}
	}
	return all, nil
}

// PutDeltaView republishes partition p's serve view after a delta
// commit: the shard bumps the partition's epoch and stamps the view
// with the new value, so replicas re-pull without any phase-1 base
// install having happened.
func (c *Client) PutDeltaView(p uint32, blob []byte) error {
	sc, err := c.shardFor(p)
	if err != nil {
		return err
	}
	req := appendU32([]byte{opPut}, p)
	req = append(req, putDeltaView)
	req = appendU64(req, 0)
	req = append(req, blob...)
	_, err = sc.roundTrip(req)
	return err
}

// PutStaleness broadcasts the engine's staleness document (an
// EncodeStaleness blob) to every shard, so any shard can answer a
// STALENESS query. Pure metadata — the PUT rides partition lo of each
// shard's range purely for routing.
func (c *Client) PutStaleness(blob []byte) error {
	for s := range c.shards {
		lo, _ := c.router.Range(s)
		req := appendU32([]byte{opPut}, uint32(lo))
		req = append(req, putStale)
		req = appendU64(req, 0)
		req = append(req, blob...)
		if _, err := c.shards[s].roundTrip(req); err != nil {
			return fmt.Errorf("netstore: put staleness on shard %d: %w", s, err)
		}
	}
	return nil
}

// Staleness fetches the engine's last published staleness document
// from shard 0 (every shard holds the same broadcast copy). The second
// return reports whether any document has been published yet.
func (c *Client) Staleness() (StalenessDoc, bool, error) {
	body, err := c.shards[0].roundTrip([]byte{opStaleness})
	if err != nil {
		return StalenessDoc{}, false, err
	}
	if len(body) == 0 {
		return StalenessDoc{}, false, nil
	}
	doc, err := DecodeStaleness(body)
	if err != nil {
		return StalenessDoc{}, false, err
	}
	return doc, true, nil
}

// DrainUpdates collects and clears every shard's pending update queue,
// in shard order then arrival order — which preserves per-user order,
// since a user's pushes all route to the same shard.
func (c *Client) DrainUpdates() ([]profile.Update, error) {
	var all []profile.Update
	for s, sc := range c.shards {
		// roundTripOnce: same lost-response hazard as DrainMutations.
		body, err := sc.roundTripOnce([]byte{opDrainUpd})
		if err != nil {
			return nil, fmt.Errorf("netstore: drain updates from shard %d: %w", s, err)
		}
		for len(body) > 0 {
			size, rest, err := cutU32(body)
			if err != nil {
				return nil, err
			}
			if uint64(size) > uint64(len(rest)) {
				return nil, fmt.Errorf("netstore: drained batch claims %d bytes over %d", size, len(rest))
			}
			batch, err := DecodeUpdates(rest[:size])
			if err != nil {
				return nil, err
			}
			all = append(all, batch...)
			body = rest[size:]
		}
	}
	return all, nil
}
