package netstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"knnpc/internal/disk"
)

func startCluster(t *testing.T, shards, parts int, model *disk.Model) (*Cluster, *Client) {
	t.Helper()
	cluster, err := StartCluster(shards, parts, model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	client, err := Dial(cluster.Addrs(), parts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return cluster, client
}

// TestPutGetRoundTrip: base blobs survive the wire byte-for-byte on
// every shard of a multi-shard cluster.
func TestPutGetRoundTrip(t *testing.T) {
	const parts = 7
	_, client := startCluster(t, 3, parts, nil)
	for p := uint32(0); p < parts; p++ {
		blob := []byte(fmt.Sprintf("state-of-%d", p))
		if err := client.PutBase(p, blob); err != nil {
			t.Fatalf("put %d: %v", p, err)
		}
	}
	for p := uint32(0); p < parts; p++ {
		got, err := client.Get(p)
		if err != nil {
			t.Fatalf("get %d: %v", p, err)
		}
		if string(got) != fmt.Sprintf("state-of-%d", p) {
			t.Fatalf("get %d: got %q", p, got)
		}
	}
	if _, err := client.Get(99); err == nil {
		t.Fatal("get of out-of-range partition succeeded")
	}
}

// TestLeaseFencing pins the write-back fencing semantics: a partial PUT
// is admitted only under a live token; released tokens, never-granted
// tokens, and tokens revoked by a new base PUT (the new-epoch rule) all
// fail with ErrStaleLease.
func TestLeaseFencing(t *testing.T) {
	_, client := startCluster(t, 2, 4, nil)
	if err := client.PutBase(1, []byte("base")); err != nil {
		t.Fatal(err)
	}

	// Live lease: partial admitted.
	tok, err := client.Lease(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutPartial(1, tok, []byte("p1")); err != nil {
		t.Fatalf("partial under live lease rejected: %v", err)
	}

	// Released lease: rejected.
	if err := client.Release(1, tok); err != nil {
		t.Fatal(err)
	}
	if err := client.PutPartial(1, tok, []byte("p2")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("partial under released lease: got %v, want ErrStaleLease", err)
	}

	// Never-granted token: rejected.
	if err := client.PutPartial(1, 424242, []byte("p3")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("partial under fabricated token: got %v, want ErrStaleLease", err)
	}

	// A new base PUT revokes outstanding leases (new epoch): the zombie
	// holder's write-back must fail.
	zombie, err := client.Lease(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutBase(1, []byte("base-v2")); err != nil {
		t.Fatal(err)
	}
	if err := client.PutPartial(1, zombie, []byte("late")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("partial under revoked lease: got %v, want ErrStaleLease", err)
	}
	// Double release of the revoked token is also stale.
	if err := client.Release(1, zombie); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("release of revoked lease: got %v, want ErrStaleLease", err)
	}

	// Leasing an unknown partition fails.
	if _, err := client.Lease(3); err == nil {
		t.Fatal("lease of partition with no state succeeded")
	}
}

// TestOverlappingLeases: many workers hold the same partition at once,
// each with its own token, and every partial lands.
func TestOverlappingLeases(t *testing.T) {
	_, client := startCluster(t, 1, 2, nil)
	if err := client.PutBase(0, []byte("base")); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tok, err := client.Lease(0)
			if err == nil {
				err = client.PutPartial(0, tok, []byte{byte(w)})
			}
			if err == nil {
				err = client.Release(0, tok)
			}
			errs[w] = err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	var items []CollectItem
	if err := client.Collect(func(it CollectItem) error { items = append(items, it); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || len(items[0].Partials) != workers {
		t.Fatalf("collected %d items / %d partials, want 1 / %d", len(items), len(items[0].Partials), workers)
	}
}

// TestCollectOrderAndContent: COLLECT streams ascending partition ids
// globally across shards, with base and partials intact, and CLEAR
// resets everything.
func TestCollectOrderAndContent(t *testing.T) {
	const parts = 9
	_, client := startCluster(t, 3, parts, nil)
	for p := uint32(0); p < parts; p++ {
		if err := client.PutBase(p, []byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	tok, err := client.Lease(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutPartial(4, tok, []byte("partial-4")); err != nil {
		t.Fatal(err)
	}

	var got []CollectItem
	if err := client.Collect(func(it CollectItem) error { got = append(got, it); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != parts {
		t.Fatalf("collected %d partitions, want %d", len(got), parts)
	}
	for i, it := range got {
		if it.Partition != uint32(i) {
			t.Fatalf("item %d is partition %d — not ascending id order", i, it.Partition)
		}
		if len(it.Base) != 1 || it.Base[0] != byte(i) {
			t.Fatalf("partition %d base corrupted: %v", i, it.Base)
		}
		wantPartials := 0
		if i == 4 {
			wantPartials = 1
		}
		if len(it.Partials) != wantPartials {
			t.Fatalf("partition %d has %d partials, want %d", i, len(it.Partials), wantPartials)
		}
	}

	if err := client.Clear(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := client.Collect(func(CollectItem) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("%d partitions survived CLEAR", count)
	}
}

// TestShardDevicesAccountIndependently: with emulation on, each shard's
// spindle accrues its own modeled time and the slept+debt==modeled
// invariant holds per shard — the accounting the FW-8 sweep reports.
func TestShardDevicesAccountIndependently(t *testing.T) {
	cluster, client := startCluster(t, 2, 4, &disk.HDD)
	blob := make([]byte, 32<<10)
	for p := uint32(0); p < 4; p++ {
		if err := client.PutBase(p, blob); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []uint32{0, 1} { // shard 0 only
		if _, err := client.Get(p); err != nil {
			t.Fatal(err)
		}
	}
	devs := cluster.Devices()
	if len(devs) != 2 {
		t.Fatalf("%d devices", len(devs))
	}
	for i, d := range devs {
		modeled, slept, debt := d.Accounting()
		if modeled == 0 {
			t.Fatalf("shard %d device never charged", i)
		}
		if slept+debt != modeled {
			t.Fatalf("shard %d: slept %v + debt %v != modeled %v", i, slept, debt, modeled)
		}
	}
	m0, _, _ := devs[0].Accounting()
	m1, _, _ := devs[1].Accounting()
	if m0 <= m1 {
		t.Fatalf("shard 0 served 2 extra reads but modeled %v <= shard 1's %v", m0, m1)
	}
}

// TestConcurrentClientsAcrossShards: two independent clients (two
// "worker processes") hammer all shards concurrently without
// corrupting state — the cross-process contract of the store.
func TestConcurrentClientsAcrossShards(t *testing.T) {
	const parts = 8
	cluster, clientA := startCluster(t, 4, parts, nil)
	clientB, err := Dial(cluster.Addrs(), parts)
	if err != nil {
		t.Fatal(err)
	}
	defer clientB.Close()

	for p := uint32(0); p < parts; p++ {
		if err := clientA.PutBase(p, []byte{byte(p)}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, 2*parts)
	for i, client := range []*Client{clientA, clientB} {
		for p := uint32(0); p < parts; p++ {
			wg.Add(1)
			go func(i int, client *Client, p uint32) {
				defer wg.Done()
				for round := 0; round < 5; round++ {
					tok, err := client.Lease(p)
					if err == nil {
						err = client.PutPartial(p, tok, []byte{byte(p), byte(round)})
					}
					if err == nil {
						err = client.Release(p, tok)
					}
					if err == nil {
						_, err = client.Get(p)
					}
					if err != nil {
						errs[i*parts+int(p)] = err
						return
					}
				}
			}(i, client, p)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	if err := clientA.Collect(func(it CollectItem) error { total += len(it.Partials); return nil }); err != nil {
		t.Fatal(err)
	}
	if want := 2 * parts * 5; total != want {
		t.Fatalf("collected %d partials, want %d", total, want)
	}
}
