package netstore

import (
	"fmt"

	"knnpc/internal/disk"
)

// Cluster bundles N loopback server shards started in one process —
// the zero-configuration way to run the network store: benchmarks, the
// FW-8 sweep, and `knnrun -netstore shards=N` all go through it, and
// because the client speaks the same TCP protocol either way, swapping
// the loopback cluster for `cmd/statestore` processes on real machines
// changes nothing above the dial.
type Cluster struct {
	servers []*Server
	addrs   []string
}

// StartCluster launches shards loopback servers over numPartitions
// partitions. A non-nil model gives every shard its own emulated
// spindle (named "shard0", "shard1", ...) — the per-shard devices are
// what moves the single-spindle queueing ceiling.
func StartCluster(shards, numPartitions int, model *disk.Model) (*Cluster, error) {
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return StartClusterAt(addrs, numPartitions, model)
}

// StartClusterAt launches one server per listen address — addrs[i]
// becomes shard i of len(addrs) — sharing the loopback cluster's shard
// construction (device naming, range assignment, failure cleanup) with
// externally addressed deployments like cmd/statestore.
func StartClusterAt(addrs []string, numPartitions int, model *disk.Model) (*Cluster, error) {
	c := &Cluster{}
	for i, addr := range addrs {
		var dev *disk.Device
		if model != nil {
			dev = disk.NewNamedDevice(*model, fmt.Sprintf("shard%d", i))
		}
		srv, err := NewServer(ServerConfig{
			Addr:          addr,
			Shard:         i,
			Shards:        len(addrs),
			NumPartitions: numPartitions,
			Device:        dev,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, srv.Addr())
	}
	return c, nil
}

// Addrs reports the shard addresses in shard order — exactly what
// Dial expects.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Servers reports the live shard servers in shard order.
func (c *Cluster) Servers() []*Server { return append([]*Server(nil), c.servers...) }

// Devices reports each shard's emulated spindle in shard order (nil
// entries without emulation) so callers can register them for
// per-shard IOStats accounting.
func (c *Cluster) Devices() []*disk.Device {
	out := make([]*disk.Device, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.Device()
	}
	return out
}

// Close stops every shard.
func (c *Cluster) Close() error {
	var firstErr error
	for _, s := range c.servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
