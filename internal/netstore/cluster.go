package netstore

import (
	"fmt"
	"net"
	"path/filepath"

	"knnpc/internal/disk"
)

// Cluster bundles N loopback server shards started in one process —
// the zero-configuration way to run the network store: benchmarks, the
// FW-8 sweep, and `knnrun -netstore shards=N` all go through it, and
// because the client speaks the same TCP protocol either way, swapping
// the loopback cluster for `cmd/statestore` processes on real machines
// changes nothing above the dial.
type Cluster struct {
	servers []*Server
	addrs   []string
}

// StartCluster launches shards loopback servers over numPartitions
// partitions. A non-nil model gives every shard its own emulated
// spindle (named "shard0", "shard1", ...) — the per-shard devices are
// what moves the single-spindle queueing ceiling.
func StartCluster(shards, numPartitions int, model *disk.Model) (*Cluster, error) {
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return StartClusterAt(addrs, numPartitions, model)
}

// StartClusterAt launches one server per listen address — addrs[i]
// becomes shard i of len(addrs) — sharing the loopback cluster's shard
// construction (device naming, range assignment, failure cleanup) with
// externally addressed deployments like cmd/statestore.
func StartClusterAt(addrs []string, numPartitions int, model *disk.Model) (*Cluster, error) {
	return StartClusterOpts(addrs, numPartitions, model, ClusterOptions{})
}

// ClusterOptions carries the robustness knobs an externally managed
// deployment layers onto a cluster; the zero value reproduces
// StartClusterAt exactly.
type ClusterOptions struct {
	// FirstShard is the cluster-wide index of the first listed address,
	// and TotalShards the cluster-wide shard count — set both when this
	// process hosts a slice of a larger cluster (cmd/statestore -shard/
	// -shards), so partition ranges land where the client expects. Zero
	// TotalShards means the address list is the whole cluster.
	FirstShard  int
	TotalShards int
	// DataDir, when non-empty, makes every shard durable, each under
	// its own subdirectory "shard<i>" (cluster-wide index, so a
	// restarted slice finds its own state).
	DataDir string
	// WrapListener, when non-nil, wraps each shard's listener — the
	// fault-injection seam (shard is the cluster-wide index).
	WrapListener func(shard int, ln net.Listener) net.Listener
	// DiskHook, when non-nil, installs a fault hook on each shard's
	// emulated device (ignored without a device model).
	DiskHook func(shard int) disk.FaultHook
}

// StartClusterOpts is StartClusterAt plus ClusterOptions — durability
// directories, fault-wrapped listeners, device fault hooks, and
// multi-process shard indexing.
func StartClusterOpts(addrs []string, numPartitions int, model *disk.Model, opts ClusterOptions) (*Cluster, error) {
	total := opts.TotalShards
	if total == 0 {
		total = len(addrs)
	}
	if opts.FirstShard < 0 || opts.FirstShard+len(addrs) > total {
		return nil, fmt.Errorf("netstore: shards [%d,%d) outside cluster of %d", opts.FirstShard, opts.FirstShard+len(addrs), total)
	}
	c := &Cluster{}
	for i, addr := range addrs {
		shard := opts.FirstShard + i
		var dev *disk.Device
		if model != nil {
			dev = disk.NewNamedDevice(*model, fmt.Sprintf("shard%d", shard))
			if opts.DiskHook != nil {
				dev.SetFaultHook(opts.DiskHook(shard))
			}
		}
		cfg := ServerConfig{
			Addr:          addr,
			Shard:         shard,
			Shards:        total,
			NumPartitions: numPartitions,
			Device:        dev,
		}
		if opts.DataDir != "" {
			cfg.DataDir = filepath.Join(opts.DataDir, fmt.Sprintf("shard%d", shard))
		}
		if opts.WrapListener != nil {
			cfg.WrapListener = func(ln net.Listener) net.Listener { return opts.WrapListener(shard, ln) }
		}
		srv, err := NewServer(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.servers = append(c.servers, srv)
		c.addrs = append(c.addrs, srv.Addr())
	}
	return c, nil
}

// Addrs reports the shard addresses in shard order — exactly what
// Dial expects.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Servers reports the live shard servers in shard order.
func (c *Cluster) Servers() []*Server { return append([]*Server(nil), c.servers...) }

// Devices reports each shard's emulated spindle in shard order (nil
// entries without emulation) so callers can register them for
// per-shard IOStats accounting.
func (c *Cluster) Devices() []*disk.Device {
	out := make([]*disk.Device, len(c.servers))
	for i, s := range c.servers {
		out[i] = s.Device()
	}
	return out
}

// Close stops every shard.
func (c *Cluster) Close() error {
	var firstErr error
	for _, s := range c.servers {
		if err := s.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
