package netstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"knnpc/internal/profile"
)

// startDurable launches a single durable shard over dir, returning the
// server and a client dialed at it.
func startDurable(t *testing.T, addr, dir string) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Addr: addr, Shard: 0, Shards: 1, NumPartitions: 4, DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	client, err := DialOptions([]string{srv.Addr()}, 4, fastOpts)
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	return srv, client
}

// TestRecoveryReplayEqualsPreCrashState: every durable surface written
// before an abrupt stop — bases, views, partials, tombstones, queued
// updates and mutations, the staleness doc — reads back identically
// from a server recovered over the same data directory.
func TestRecoveryReplayEqualsPreCrashState(t *testing.T) {
	dir := t.TempDir()
	srv, client := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr()

	if err := client.PutBase(1, []byte("base-1")); err != nil {
		t.Fatal(err)
	}
	token, err := client.Lease(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.PutPartial(1, token, []byte("partial-1")); err != nil {
		t.Fatal(err)
	}
	vec, err := profile.NewVector([]profile.Entry{{Item: 3, Weight: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	view := EncodeView([]ViewEntry{{User: 5, Neighbors: []uint32{1, 9}, Profile: vec.AppendBinary(nil)}})
	if err := client.PutView(1, view); err != nil {
		t.Fatal(err)
	}
	if err := client.PushUpdates([]profile.Update{{User: 5, Kind: profile.SetItem, Item: 3, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := client.AddUser(6, vec.AppendBinary(nil)); err != nil {
		t.Fatal(err)
	}
	if err := client.DelUser(7); err != nil {
		t.Fatal(err)
	}
	if err := client.PutStaleness(EncodeStaleness(StalenessDoc{LastFullEpoch: 2, Users: 8})); err != nil {
		t.Fatal(err)
	}
	baseEpoch, viewEpoch, err := client.Epoch(1)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	// Abrupt stop: no snapshot on close, the journal is the truth.
	srv.Close()

	srv2, client2 := startDurable(t, addr, dir)
	defer srv2.Close()
	defer client2.Close()

	if got, err := client2.Get(1); err != nil || string(got) != "base-1" {
		t.Fatalf("recovered base = %q, %v", got, err)
	}
	if be, ve, err := client2.Epoch(1); err != nil || be != baseEpoch || ve != viewEpoch {
		t.Fatalf("recovered epochs = (%d, %d), %v; want (%d, %d)", be, ve, err, baseEpoch, viewEpoch)
	}
	if _, blob, err := client2.GetView(1); err != nil || !bytes.Equal(blob, view) {
		t.Fatalf("recovered view mismatch: %v", err)
	}
	if epoch, ids, err := client2.Neighbors(5); err != nil || len(ids) != 2 || epoch != viewEpoch {
		t.Fatalf("recovered lookup = (%d, %v, %v)", epoch, ids, err)
	}
	// The tombstone survived: user 7 answers not-served, not a scan.
	if _, _, err := client2.Neighbors(7); !errors.Is(err, ErrNotServed) {
		t.Fatalf("tombstoned lookup after recovery = %v, want ErrNotServed", err)
	}
	doc, ok, err := client2.Staleness()
	if err != nil || !ok || doc.LastFullEpoch != 2 || doc.Users != 8 {
		t.Fatalf("recovered staleness = %+v, %v, %v", doc, ok, err)
	}
	ups, err := client2.DrainUpdates()
	if err != nil || len(ups) != 1 || ups[0].User != 5 {
		t.Fatalf("recovered updates = %v, %v", ups, err)
	}
	muts, err := client2.DrainMutations()
	if err != nil || len(muts) != 2 {
		t.Fatalf("recovered mutations = %v, %v", muts, err)
	}
	// The pre-crash partial replayed, so a RESET (the engine's retry
	// barrier) still has something to drop — and the base survives it.
	if err := client2.Reset(); err != nil {
		t.Fatal(err)
	}
	if got, err := client2.Get(1); err != nil || string(got) != "base-1" {
		t.Fatalf("post-reset base = %q, %v", got, err)
	}
}

// TestRecoveryLeaseFencing: a lease token issued before the crash is
// dead after recovery — the restart wipes the volatile lease table, so
// a pre-crash worker's write-back answers ErrStaleLease instead of
// contaminating the healed run.
func TestRecoveryLeaseFencing(t *testing.T) {
	dir := t.TempDir()
	srv, client := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr()

	if err := client.PutBase(2, []byte("state")); err != nil {
		t.Fatal(err)
	}
	preCrash, err := client.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Close()

	srv2, client2 := startDurable(t, addr, dir)
	defer srv2.Close()
	defer client2.Close()

	if err := client2.PutPartial(2, preCrash, []byte("zombie")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("pre-crash token accepted: %v, want ErrStaleLease", err)
	}
	// Token monotonicity across the crash: the healed worker's fresh
	// lease never collides with the fenced one.
	fresh, err := client2.Lease(2)
	if err != nil {
		t.Fatal(err)
	}
	if fresh <= preCrash {
		t.Fatalf("post-recovery token %d not past pre-crash token %d", fresh, preCrash)
	}
	if err := client2.PutPartial(2, fresh, []byte("healed")); err != nil {
		t.Fatalf("fresh token rejected: %v", err)
	}
}

// TestClientReconnectAcrossRestart: one Client rides a server restart
// — the idempotent retry path redials the poisoned connection and the
// read answers from the recovered state, with no re-dial by the
// caller.
func TestClientReconnectAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(ServerConfig{
		Addr: "127.0.0.1:0", Shard: 0, Shards: 1, NumPartitions: 4, DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	// The default retry ladder, squeezed in time: the reconnect under
	// test is the redial inside roundTripRetry, not the backoff length.
	client, err := DialOptions([]string{addr}, 4, ClientOptions{
		MaxAttempts: 4,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	})
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.PutBase(0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(0); err != nil {
		t.Fatal(err)
	}
	srv.Close()

	srv2, err := NewServer(ServerConfig{
		Addr: addr, Shard: 0, Shards: 1, NumPartitions: 4, DataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	// Same client object: the first attempt fails on the dead conn, the
	// retry ladder redials the restarted server and reads the recovered
	// state.
	blob, err := client.Get(0)
	if err != nil || string(blob) != "durable" {
		t.Fatalf("reconnect Get = %q, %v", blob, err)
	}
}

// TestRecoveryTornJournalTail: garbage appended past the last whole
// journal record — the shape a mid-append crash leaves — is truncated
// on recovery; the whole records replay and new appends land cleanly
// after the cut.
func TestRecoveryTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	srv, client := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr()

	if err := client.PutBase(3, []byte("whole-record")); err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Close()

	journal := filepath.Join(dir, "journal")
	pre, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) == 0 {
		t.Fatal("journal empty before tear; the test would be vacuous")
	}
	// A torn append: a length prefix promising more than was written.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00, 0x40, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv2, client2 := startDurable(t, addr, dir)
	defer srv2.Close()
	defer client2.Close()

	if got, err := client2.Get(3); err != nil || string(got) != "whole-record" {
		t.Fatalf("recovered base = %q, %v", got, err)
	}
	post, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(post, pre) {
		t.Fatalf("torn tail not truncated: journal is %d bytes, want %d", len(post), len(pre))
	}
	if err := client2.PutBase(3, []byte("after-cut")); err != nil {
		t.Fatal(err)
	}
	if got, err := client2.Get(3); err != nil || string(got) != "after-cut" {
		t.Fatalf("post-cut base = %q, %v", got, err)
	}
}

// TestSnapshotCutOnCommitMarker: a staleness publish — the engine's
// per-iteration commit marker — cuts a snapshot and truncates the
// journal, so recovery after a long run replays one iteration's tail,
// not the whole history.
func TestSnapshotCutOnCommitMarker(t *testing.T) {
	dir := t.TempDir()
	srv, client := startDurable(t, "127.0.0.1:0", dir)
	defer srv.Close()
	defer client.Close()

	if err := client.PutBase(0, []byte("iteration-state")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("snapshot exists before any commit marker: %v", err)
	}
	if err := client.PutStaleness(EncodeStaleness(StalenessDoc{LastFullEpoch: 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot")); err != nil {
		t.Fatalf("commit marker cut no snapshot: %v", err)
	}
	info, err := os.Stat(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("journal holds %d bytes after a snapshot cut, want 0", info.Size())
	}
}

// TestRecoveryAfterSnapshotCutAndAppend: records appended *after* a
// snapshot cut start at journal offset zero — the cut must rewind the
// fd along with the truncate, or every post-cut append lands past a
// zero-filled hole that replay reads as a garbage record. (Found by
// scripts/e2e_chaos.sh: the first mid-run crash after a commit-marker
// cut could not recover.)
func TestRecoveryAfterSnapshotCutAndAppend(t *testing.T) {
	dir := t.TempDir()
	srv, client := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr()

	if err := client.PutBase(0, []byte("pre-cut")); err != nil {
		t.Fatal(err)
	}
	// The commit marker cuts a snapshot and truncates the journal.
	if err := client.PutStaleness(EncodeStaleness(StalenessDoc{LastFullEpoch: 1})); err != nil {
		t.Fatal(err)
	}
	if err := client.PutBase(1, []byte("post-cut")); err != nil {
		t.Fatal(err)
	}
	// The post-cut record must sit at offset zero, not past a hole.
	info, err := os.Stat(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 + 1 + 4 + 1 + 8 + len("post-cut")); info.Size() != want {
		t.Fatalf("post-cut journal is %d bytes, want %d (a hole before the record?)", info.Size(), want)
	}
	client.Close()
	srv.Close()

	srv2, client2 := startDurable(t, addr, dir)
	defer srv2.Close()
	defer client2.Close()
	if got, err := client2.Get(0); err != nil || string(got) != "pre-cut" {
		t.Fatalf("snapshot state = %q, %v", got, err)
	}
	if got, err := client2.Get(1); err != nil || string(got) != "post-cut" {
		t.Fatalf("post-cut journal state = %q, %v", got, err)
	}
}

// TestRecoveryFromSnapshotOnly: state that lives entirely in the
// snapshot (journal truncated by the commit-marker cut) recovers
// without any journal records to replay.
func TestRecoveryFromSnapshotOnly(t *testing.T) {
	dir := t.TempDir()
	srv, client := startDurable(t, "127.0.0.1:0", dir)
	addr := srv.Addr()

	if err := client.PutBase(1, []byte("snapped")); err != nil {
		t.Fatal(err)
	}
	if err := client.PutStaleness(EncodeStaleness(StalenessDoc{LastFullEpoch: 3})); err != nil {
		t.Fatal(err)
	}
	client.Close()
	srv.Close()

	srv2, client2 := startDurable(t, addr, dir)
	defer srv2.Close()
	defer client2.Close()
	if got, err := client2.Get(1); err != nil || string(got) != "snapped" {
		t.Fatalf("snapshot-only recovery Get = %q, %v", got, err)
	}
	doc, ok, err := client2.Staleness()
	if err != nil || !ok || doc.LastFullEpoch != 3 {
		t.Fatalf("snapshot-only staleness = %+v, %v, %v", doc, ok, err)
	}
}
