package disk

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestIOStatsCounting(t *testing.T) {
	var s IOStats
	s.AddLoad()
	s.AddLoad()
	s.AddUnload()
	s.AddSeek()
	s.AddRead(100)
	s.AddRead(50)
	s.AddWrite(30)

	snap := s.Snapshot()
	if snap.Loads != 2 || snap.Unloads != 1 || snap.Seeks != 1 {
		t.Errorf("load/unload/seek counters wrong: %+v", snap)
	}
	if snap.ReadOps != 2 || snap.BytesRead != 150 {
		t.Errorf("read counters wrong: %+v", snap)
	}
	if snap.WriteOps != 1 || snap.BytesWritten != 30 {
		t.Errorf("write counters wrong: %+v", snap)
	}
	if got := snap.LoadUnloadOps(); got != 3 {
		t.Errorf("LoadUnloadOps = %d, want 3", got)
	}

	s.Reset()
	if after := s.Snapshot(); after.LoadUnloadOps() != 0 || after.Seeks != 0 ||
		after.ReadOps != 0 || after.WriteOps != 0 || after.BytesRead != 0 || after.BytesWritten != 0 {
		t.Error("Reset should zero all counters")
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{Loads: 5, BytesRead: 100, Seeks: 3}
	b := Snapshot{Loads: 2, BytesRead: 40, Seeks: 1}
	d := a.Sub(b)
	if d.Loads != 3 || d.BytesRead != 60 || d.Seeks != 2 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestIOStatsConcurrent(t *testing.T) {
	var s IOStats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.AddRead(1)
				s.AddLoad()
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.BytesRead != 8000 || snap.Loads != 8000 {
		t.Errorf("concurrent counting lost updates: %+v", snap)
	}
}

func TestModelEstimateTime(t *testing.T) {
	m := Model{
		Name:           "test",
		SeekLatency:    10 * time.Millisecond,
		ReadBandwidth:  100, // 100 B/s to make the math obvious
		WriteBandwidth: 50,
	}
	s := Snapshot{Seeks: 2, BytesRead: 200, BytesWritten: 100}
	// 2×10ms + 200/100 s + 100/50 s = 4.02 s
	want := 20*time.Millisecond + 4*time.Second
	if got := m.EstimateTime(s); got != want {
		t.Errorf("EstimateTime = %v, want %v", got, want)
	}
}

func TestModelOrdering(t *testing.T) {
	// A seek-heavy workload must be far slower on HDD than SSD than NVMe.
	s := Snapshot{Seeks: 1000, BytesRead: 64 << 20, BytesWritten: 64 << 20}
	hdd, ssd, nvme := HDD.EstimateTime(s), SSD.EstimateTime(s), NVMe.EstimateTime(s)
	if !(hdd > ssd && ssd > nvme) {
		t.Errorf("expected hdd > ssd > nvme, got %v %v %v", hdd, ssd, nvme)
	}
	if hdd < 9*time.Second {
		t.Errorf("1000 seeks on HDD should cost ≥9s, got %v", hdd)
	}
}

func TestModelThroughput(t *testing.T) {
	if got := SSD.Throughput(Snapshot{}); got != 0 {
		t.Errorf("empty workload throughput = %v, want 0", got)
	}
	s := Snapshot{BytesRead: 520 << 20} // exactly one second of SSD reads
	tp := SSD.Throughput(s)
	if tp < 500<<20 || tp > 540<<20 {
		t.Errorf("throughput = %v, want ≈520MB/s", tp)
	}
}

func TestModelByName(t *testing.T) {
	for _, name := range []string{"hdd", "ssd", "nvme"} {
		m, ok := ModelByName(name)
		if !ok || m.Name != name {
			t.Errorf("ModelByName(%q) = %v, %v", name, m, ok)
		}
	}
	if _, ok := ModelByName("floppy"); ok {
		t.Error("unknown model should report false")
	}
}

func TestReadWriteFileCounted(t *testing.T) {
	var s IOStats
	path := filepath.Join(t.TempDir(), "blob")
	data := []byte("hello out-of-core world")
	if err := WriteFile(&s, path, data); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(&s, path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(got) != string(data) {
		t.Errorf("round trip mismatch: %q", got)
	}
	snap := s.Snapshot()
	if snap.Seeks != 2 || snap.BytesWritten != int64(len(data)) || snap.BytesRead != int64(len(data)) {
		t.Errorf("counters wrong: %+v", snap)
	}
}

func TestReadFileMissing(t *testing.T) {
	var s IOStats
	if _, err := ReadFile(&s, filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("reading a missing file should fail")
	}
}

func TestRemoveIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Remove(path); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := Remove(path); err != nil {
		t.Fatalf("second Remove should be a no-op, got %v", err)
	}
}

func TestRecordFileRoundTrip(t *testing.T) {
	var s IOStats
	path := filepath.Join(t.TempDir(), "records")
	w, err := CreateRecordFile(&s, path)
	if err != nil {
		t.Fatalf("CreateRecordFile: %v", err)
	}
	records := [][]byte{[]byte("first"), {}, []byte("third record")}
	for _, rec := range records {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d, want 3", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := OpenRecordFile(&s, path)
	if err != nil {
		t.Fatalf("OpenRecordFile: %v", err)
	}
	defer r.Close()
	for i, want := range records {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Errorf("record %d = %q, want %q", i, got, want)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("after last record want io.EOF, got %v", err)
	}
}

func TestRecordReaderTruncated(t *testing.T) {
	var s IOStats
	path := filepath.Join(t.TempDir(), "records")
	w, err := CreateRecordFile(&s, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRecordFile(&s, path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record should yield a real error, got %v", err)
	}
}

func TestBudgetReserveRelease(t *testing.T) {
	b := NewBudget(100)
	if err := b.Reserve(60); err != nil {
		t.Fatalf("Reserve(60): %v", err)
	}
	if err := b.Reserve(50); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-reserve should fail with ErrBudgetExceeded, got %v", err)
	}
	if b.Used() != 60 {
		t.Errorf("failed reserve must not charge: used=%d", b.Used())
	}
	if err := b.Reserve(40); err != nil {
		t.Fatalf("Reserve(40): %v", err)
	}
	if b.Peak() != 100 {
		t.Errorf("Peak = %d, want 100", b.Peak())
	}
	b.Release(100)
	if b.Used() != 0 {
		t.Errorf("Used after release = %d, want 0", b.Used())
	}
	b.Release(10) // over-release clamps
	if b.Used() != 0 {
		t.Errorf("over-release should clamp at 0, got %d", b.Used())
	}
	if err := b.Reserve(-1); err == nil {
		t.Error("negative reservation should fail")
	}
}

func TestBudgetUnlimited(t *testing.T) {
	b := NewBudget(0)
	if err := b.Reserve(1 << 40); err != nil {
		t.Errorf("unlimited budget should accept any reservation: %v", err)
	}
}

func TestScratchOwnedLifecycle(t *testing.T) {
	s, err := NewScratch("")
	if err != nil {
		t.Fatalf("NewScratch: %v", err)
	}
	dir := s.Dir()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("scratch dir should exist: %v", err)
	}
	p := s.Path("a", "b")
	if want := filepath.Join(dir, "a", "b"); p != want {
		t.Errorf("Path = %q, want %q", p, want)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Error("owned scratch dir should be removed on Close")
	}
}

func TestScratchCallerOwnedPreserved(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "keep")
	s, err := NewScratch(dir)
	if err != nil {
		t.Fatalf("NewScratch: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Error("caller-owned dir must survive Close")
	}
}

// TestDeviceNilAndDebt: a nil Device is a no-op everywhere (callers
// plumb one pointer without nil checks), and a real device amortizes
// sub-millisecond accesses through its debt instead of sleeping each
// one — total modeled time stays proportional to the work.
func TestDeviceNilAndDebt(t *testing.T) {
	var nilDev *Device
	nilDev.Read(1 << 20)  // must not panic
	nilDev.Write(1 << 20) // must not panic

	dev := NewDevice(Model{Name: "test", SeekLatency: 100 * time.Microsecond, ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30})
	start := time.Now()
	for i := 0; i < 20; i++ {
		dev.Read(0)
	}
	elapsed := time.Since(start)
	// 20 seeks × 100µs = 2ms of modeled time; debt batching must keep
	// the real elapsed time in that ballpark, not 20 × a timer tick.
	if elapsed < time.Millisecond {
		t.Errorf("20 modeled seeks took %v, expected ≥ 1ms of enforced latency", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("20 modeled seeks took %v — debt amortization is not working", elapsed)
	}
	if dev.Model().Name != "test" {
		t.Errorf("Model() = %q", dev.Model().Name)
	}
}

// TestDeviceDebtExactUnderConcurrency is the satellite accounting
// test: N goroutines hammering Read/Write concurrently — the multi-
// worker phase-4 access pattern — must leave aggregate modeled device
// time exact to within the 1ms sleep granularity. Two properties pin
// it: the books must balance exactly (modeled == slept + debt; a
// credit-back that double-counted elapsed time across concurrent
// sleeps would break this identity), and the hammer's wall time must
// cover the modeled total minus the one never-slept sub-millisecond
// residue (a device that let concurrent accessors sleep in parallel,
// or credited one accessor's sleep to another, would finish early).
func TestDeviceDebtExactUnderConcurrency(t *testing.T) {
	model := Model{Name: "test", SeekLatency: 200 * time.Microsecond, ReadBandwidth: 1 << 30, WriteBandwidth: 1 << 30}
	dev := NewDevice(model)
	const goroutines, accesses = 8, 40
	perOp := model.SeekLatency // zero-byte ops cost exactly one seek

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < accesses; i++ {
				if (g+i)%2 == 0 {
					dev.Read(0)
				} else {
					dev.Write(0)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	modeled, slept, debt := dev.Accounting()
	want := time.Duration(goroutines*accesses) * perOp
	if modeled != want {
		t.Fatalf("modeled %v, want %v (%d×%d accesses of %v)", modeled, want, goroutines, accesses, perOp)
	}
	if slept+debt != modeled {
		t.Fatalf("books do not balance: slept %v + debt %v != modeled %v (elapsed time credited more than once?)",
			slept, debt, modeled)
	}
	if debt >= time.Millisecond {
		t.Fatalf("final debt %v at or above the sleep granularity was never slept", debt)
	}
	if min := modeled - time.Millisecond; elapsed < min {
		t.Fatalf("hammer finished in %v, modeled total is %v — the device under-slept", elapsed, modeled)
	}

	var nilDev *Device
	if m, s, d := nilDev.Accounting(); m != 0 || s != 0 || d != 0 {
		t.Errorf("nil device reported accounting %v/%v/%v", m, s, d)
	}
}

// TestPerShardDeviceAccounting: IOStats rolls registered per-shard
// devices into its snapshots — one DeviceAccounting entry per spindle,
// in registration order, with the slept+debt==modeled invariant pinned
// per shard even under concurrent access, and name-matched subtraction
// in Sub.
func TestPerShardDeviceAccounting(t *testing.T) {
	model := Model{Name: "unit", SeekLatency: 200 * time.Microsecond}
	var s IOStats
	shard0 := NewNamedDevice(model, "shard0")
	shard1 := NewNamedDevice(model, "shard1")
	s.RegisterDevice(shard0)
	s.RegisterDevice(shard1)
	s.RegisterDevice(nil) // must be ignored

	before := s.Snapshot()
	if len(before.Devices) != 2 {
		t.Fatalf("registered 2 devices, snapshot has %d", len(before.Devices))
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				shard0.Read(0)
				if g%2 == 0 {
					shard1.Write(0)
				}
			}
		}(g)
	}
	wg.Wait()

	after := s.Snapshot()
	if len(after.Devices) != 2 || after.Devices[0].Name != "shard0" || after.Devices[1].Name != "shard1" {
		t.Fatalf("device entries wrong: %+v", after.Devices)
	}
	for _, d := range after.Devices {
		if d.Modeled == 0 {
			t.Fatalf("%s never charged", d.Name)
		}
		if d.Slept+d.Debt != d.Modeled {
			t.Fatalf("%s: slept %v + debt %v != modeled %v — per-shard books must balance",
				d.Name, d.Slept, d.Debt, d.Modeled)
		}
	}
	if w0, w1 := after.Devices[0].Modeled, after.Devices[1].Modeled; w0 != 2*w1 {
		t.Fatalf("shard0 modeled %v, shard1 %v — want exactly 2x (200 vs 100 accesses)", w0, w1)
	}

	d := after.Sub(before)
	if len(d.Devices) != 2 {
		t.Fatalf("Sub dropped device entries: %+v", d.Devices)
	}
	for i := range d.Devices {
		if d.Devices[i].Modeled != after.Devices[i].Modeled-before.Devices[i].Modeled {
			t.Fatalf("Sub of %s not name-matched: %+v", d.Devices[i].Name, d.Devices[i])
		}
		if d.Devices[i].Slept+d.Devices[i].Debt != d.Devices[i].Modeled {
			t.Fatalf("Sub of %s broke the per-shard invariant: %+v", d.Devices[i].Name, d.Devices[i])
		}
	}

	// A device registered only in the newer snapshot keeps its full
	// accounting through Sub.
	late := NewNamedDevice(model, "late")
	s.RegisterDevice(late)
	late.Read(0)
	d2 := s.Snapshot().Sub(before)
	found := false
	for _, dev := range d2.Devices {
		if dev.Name == "late" && dev.Modeled > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("late-registered device missing from Sub: %+v", d2.Devices)
	}
}

// TestAppendTimeIsSeekless: a journal append pays transfer only —
// strictly cheaper than a random write of the same size by exactly the
// seek — and Device.Append still lands in the modeled books.
func TestAppendTimeIsSeekless(t *testing.T) {
	m := Model{Name: "unit", SeekLatency: 5 * time.Millisecond, WriteBandwidth: 100 << 20}
	n := int64(1 << 20)
	if got, want := m.WriteTime(n)-m.AppendTime(n), m.SeekLatency; got != want {
		t.Fatalf("write - append = %v, want the seek %v", got, want)
	}
	if m.AppendTime(0) != 0 {
		t.Fatalf("empty append costs %v", m.AppendTime(0))
	}
	if (Model{}).AppendTime(n) != 0 {
		t.Fatal("zero model should append for free")
	}
	dev := NewNamedDevice(m, "journal")
	dev.Append(n)
	modeled, slept, debt := dev.Accounting()
	if modeled != m.AppendTime(n) {
		t.Fatalf("modeled %v, want %v", modeled, m.AppendTime(n))
	}
	if slept+debt != modeled {
		t.Fatalf("books unbalanced: %v + %v != %v", slept, debt, modeled)
	}
}

// TestResetRebaselinesDevices: Reset's "zero all counters" promise
// covers per-device times — a post-Reset snapshot starts device books
// from zero (still balanced), while the Device's own cumulative
// accounting is untouched for other holders.
func TestResetRebaselinesDevices(t *testing.T) {
	m := Model{Name: "unit", SeekLatency: 2 * time.Millisecond}
	var s IOStats
	dev := NewNamedDevice(m, "shard0")
	s.RegisterDevice(dev)
	dev.Read(0)
	if before := s.Snapshot(); before.Devices[0].Modeled == 0 {
		t.Fatal("device never charged")
	}
	s.Reset()
	after := s.Snapshot()
	if d := after.Devices[0]; d.Modeled != 0 || d.Slept != 0 || d.Debt != 0 {
		t.Fatalf("post-Reset snapshot still carries device time: %+v", d)
	}
	dev.Read(0)
	d := s.Snapshot().Devices[0]
	if d.Modeled != m.ReadTime(0) {
		t.Fatalf("post-Reset charge %v, want one read %v", d.Modeled, m.ReadTime(0))
	}
	if d.Slept+d.Debt != d.Modeled {
		t.Fatalf("rebaselined books unbalanced: %+v", d)
	}
	if modeled, _, _ := dev.Accounting(); modeled != 2*m.ReadTime(0) {
		t.Fatalf("device's own cumulative books were clobbered: %v", modeled)
	}
}
