package disk

import (
	"fmt"
	"os"
	"path/filepath"
)

// Scratch manages the on-disk working directory of one engine run:
// partition files, spilled hash-table shards and accumulator state all
// live under it. Close removes the directory if Scratch created it.
type Scratch struct {
	dir     string
	created bool
}

// NewScratch returns a scratch rooted at dir. If dir is empty a fresh
// temporary directory is created (and owned — Close will remove it). A
// caller-provided dir is created if missing but never removed.
func NewScratch(dir string) (*Scratch, error) {
	if dir == "" {
		tmp, err := os.MkdirTemp("", "knnpc-*")
		if err != nil {
			return nil, fmt.Errorf("disk: create scratch dir: %w", err)
		}
		return &Scratch{dir: tmp, created: true}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: ensure scratch dir %s: %w", dir, err)
	}
	return &Scratch{dir: dir}, nil
}

// Dir reports the scratch root.
func (s *Scratch) Dir() string { return s.dir }

// Path joins name components under the scratch root.
func (s *Scratch) Path(elem ...string) string {
	return filepath.Join(append([]string{s.dir}, elem...)...)
}

// Close removes the directory when Scratch created it; otherwise it is
// a no-op (caller-owned directories are preserved).
func (s *Scratch) Close() error {
	if !s.created {
		return nil
	}
	if err := os.RemoveAll(s.dir); err != nil {
		return fmt.Errorf("disk: remove scratch dir %s: %w", s.dir, err)
	}
	return nil
}
