// Package disk is the storage substrate of the out-of-core engine. It
// provides counted file I/O (every byte and random access is recorded in
// IOStats), analytic disk cost models that translate those counts into
// estimated device time for HDD/SSD/NVMe hardware, a memory budget
// accountant, length-prefixed record files used for hash-table spills,
// and scratch-directory management.
//
// The paper's stated goal is "to minimize random accesses to disk as
// well as the amount of data loaded/unloaded from/to disk"; IOStats is
// how the reproduction observes exactly those two quantities.
package disk

import (
	"sync"
	"sync/atomic"
	"time"
)

// IOStats accumulates I/O counters. All methods are safe for concurrent
// use. The zero value is ready to use.
type IOStats struct {
	loads        atomic.Int64
	unloads      atomic.Int64
	seeks        atomic.Int64
	readOps      atomic.Int64
	writeOps     atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64

	// devMu guards the registered emulated devices. Registration is
	// rare (engine construction); snapshots read each device's own
	// internally-synchronized accounting. devBase holds each device's
	// accounting as of the last Reset — a Device's own books are
	// cumulative for its whole life (other holders may read them), so
	// Reset re-baselines here instead of zeroing the device.
	devMu   sync.Mutex
	devices []*Device
	devBase []DeviceAccounting
}

// DeviceAccounting is one emulated device's time bookkeeping at a point
// in time: per-spindle, so a sharded state store reports where modeled
// device time queued instead of one global number. The invariant
// Modeled == Slept + Debt holds per device (see Device.Accounting).
type DeviceAccounting struct {
	// Name labels the spindle ("spindle" for the engine's shared local
	// device, "shard0", "shard1", ... for state-store shards).
	Name string
	// Modeled is the total device time ever charged by the cost model.
	Modeled time.Duration
	// Slept is the wall time actually serialized on the device.
	Slept time.Duration
	// Debt is the modeled time not yet slept (negative after an
	// overshoot; |Debt| stays under the 1ms sleep granularity).
	Debt time.Duration
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Loads and Unloads count partition-granularity transfers — the
	// quantity Table 1 of the paper reports.
	Loads   int64
	Unloads int64
	// Seeks counts random accesses (file opens and repositionings).
	Seeks int64
	// ReadOps/WriteOps count I/O system-call-level operations.
	ReadOps  int64
	WriteOps int64
	// BytesRead/BytesWritten count payload volume.
	BytesRead    int64
	BytesWritten int64
	// Devices reports per-spindle emulated-device time for every device
	// registered with RegisterDevice, in registration order — one entry
	// per state-store shard (plus the engine's local spindle), so
	// shard-count sweeps can show modeled queueing moving off one
	// device. Empty when no device is registered (no emulation).
	Devices []DeviceAccounting
}

// AddLoad records a partition load.
func (s *IOStats) AddLoad() { s.loads.Add(1) }

// AddUnload records a partition unload.
func (s *IOStats) AddUnload() { s.unloads.Add(1) }

// AddSeek records a random access.
func (s *IOStats) AddSeek() { s.seeks.Add(1) }

// AddRead records one read operation of n bytes.
func (s *IOStats) AddRead(n int64) {
	s.readOps.Add(1)
	s.bytesRead.Add(n)
}

// AddWrite records one write operation of n bytes.
func (s *IOStats) AddWrite(n int64) {
	s.writeOps.Add(1)
	s.bytesWritten.Add(n)
}

// RegisterDevice adds an emulated device to the stats' per-spindle
// accounting: every Snapshot thereafter carries the device's
// modeled/slept/debt times under its name. Nil devices are ignored.
func (s *IOStats) RegisterDevice(d *Device) {
	if d == nil {
		return
	}
	s.devMu.Lock()
	s.devices = append(s.devices, d)
	s.devBase = append(s.devBase, DeviceAccounting{Name: d.Name()})
	s.devMu.Unlock()
}

// Snapshot returns a copy of the current counters.
func (s *IOStats) Snapshot() Snapshot {
	snap := Snapshot{
		Loads:        s.loads.Load(),
		Unloads:      s.unloads.Load(),
		Seeks:        s.seeks.Load(),
		ReadOps:      s.readOps.Load(),
		WriteOps:     s.writeOps.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
	s.devMu.Lock()
	devices := append([]*Device(nil), s.devices...)
	base := append([]DeviceAccounting(nil), s.devBase...)
	s.devMu.Unlock()
	for i, d := range devices {
		modeled, slept, debt := d.Accounting()
		snap.Devices = append(snap.Devices, DeviceAccounting{
			Name:    d.Name(),
			Modeled: modeled - base[i].Modeled,
			Slept:   slept - base[i].Slept,
			Debt:    debt - base[i].Debt,
		})
	}
	return snap
}

// Reset zeroes all counters, including the per-device times: each
// registered device's current accounting becomes the new baseline
// later Snapshots subtract (the device's own cumulative books are
// shared with other holders and stay untouched).
func (s *IOStats) Reset() {
	s.loads.Store(0)
	s.unloads.Store(0)
	s.seeks.Store(0)
	s.readOps.Store(0)
	s.writeOps.Store(0)
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
	s.devMu.Lock()
	for i, d := range s.devices {
		modeled, slept, debt := d.Accounting()
		s.devBase[i] = DeviceAccounting{Name: d.Name(), Modeled: modeled, Slept: slept, Debt: debt}
	}
	s.devMu.Unlock()
}

// LoadUnloadOps reports Loads + Unloads — the single number the paper's
// Table 1 tabulates per heuristic.
func (s Snapshot) LoadUnloadOps() int64 { return s.Loads + s.Unloads }

// Sub returns the counter-wise difference s - o, for measuring a phase.
// Device times subtract by name (a device registered after o was taken
// keeps its full accounting); the Modeled == Slept + Debt invariant is
// preserved entry-wise because it holds in both operands.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	oldDev := make(map[string]DeviceAccounting, len(o.Devices))
	for _, d := range o.Devices {
		oldDev[d.Name] = d
	}
	var devices []DeviceAccounting
	for _, d := range s.Devices {
		if prev, ok := oldDev[d.Name]; ok {
			d.Modeled -= prev.Modeled
			d.Slept -= prev.Slept
			d.Debt -= prev.Debt
		}
		devices = append(devices, d)
	}
	return Snapshot{
		Loads:        s.Loads - o.Loads,
		Unloads:      s.Unloads - o.Unloads,
		Seeks:        s.Seeks - o.Seeks,
		ReadOps:      s.ReadOps - o.ReadOps,
		WriteOps:     s.WriteOps - o.WriteOps,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
		Devices:      devices,
	}
}
