// Package disk is the storage substrate of the out-of-core engine. It
// provides counted file I/O (every byte and random access is recorded in
// IOStats), analytic disk cost models that translate those counts into
// estimated device time for HDD/SSD/NVMe hardware, a memory budget
// accountant, length-prefixed record files used for hash-table spills,
// and scratch-directory management.
//
// The paper's stated goal is "to minimize random accesses to disk as
// well as the amount of data loaded/unloaded from/to disk"; IOStats is
// how the reproduction observes exactly those two quantities.
package disk

import "sync/atomic"

// IOStats accumulates I/O counters. All methods are safe for concurrent
// use. The zero value is ready to use.
type IOStats struct {
	loads        atomic.Int64
	unloads      atomic.Int64
	seeks        atomic.Int64
	readOps      atomic.Int64
	writeOps     atomic.Int64
	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// Snapshot is a point-in-time copy of the counters.
type Snapshot struct {
	// Loads and Unloads count partition-granularity transfers — the
	// quantity Table 1 of the paper reports.
	Loads   int64
	Unloads int64
	// Seeks counts random accesses (file opens and repositionings).
	Seeks int64
	// ReadOps/WriteOps count I/O system-call-level operations.
	ReadOps  int64
	WriteOps int64
	// BytesRead/BytesWritten count payload volume.
	BytesRead    int64
	BytesWritten int64
}

// AddLoad records a partition load.
func (s *IOStats) AddLoad() { s.loads.Add(1) }

// AddUnload records a partition unload.
func (s *IOStats) AddUnload() { s.unloads.Add(1) }

// AddSeek records a random access.
func (s *IOStats) AddSeek() { s.seeks.Add(1) }

// AddRead records one read operation of n bytes.
func (s *IOStats) AddRead(n int64) {
	s.readOps.Add(1)
	s.bytesRead.Add(n)
}

// AddWrite records one write operation of n bytes.
func (s *IOStats) AddWrite(n int64) {
	s.writeOps.Add(1)
	s.bytesWritten.Add(n)
}

// Snapshot returns a copy of the current counters.
func (s *IOStats) Snapshot() Snapshot {
	return Snapshot{
		Loads:        s.loads.Load(),
		Unloads:      s.unloads.Load(),
		Seeks:        s.seeks.Load(),
		ReadOps:      s.readOps.Load(),
		WriteOps:     s.writeOps.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

// Reset zeroes all counters.
func (s *IOStats) Reset() {
	s.loads.Store(0)
	s.unloads.Store(0)
	s.seeks.Store(0)
	s.readOps.Store(0)
	s.writeOps.Store(0)
	s.bytesRead.Store(0)
	s.bytesWritten.Store(0)
}

// LoadUnloadOps reports Loads + Unloads — the single number the paper's
// Table 1 tabulates per heuristic.
func (s Snapshot) LoadUnloadOps() int64 { return s.Loads + s.Unloads }

// Sub returns the counter-wise difference s - o, for measuring a phase.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		Loads:        s.Loads - o.Loads,
		Unloads:      s.Unloads - o.Unloads,
		Seeks:        s.Seeks - o.Seeks,
		ReadOps:      s.ReadOps - o.ReadOps,
		WriteOps:     s.WriteOps - o.WriteOps,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
	}
}
