package disk

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBudgetExceeded is returned by Budget.Reserve when a reservation
// would push usage past the limit.
var ErrBudgetExceeded = errors.New("disk: memory budget exceeded")

// Budget tracks memory charged to in-memory data structures so the
// engine can enforce the paper's "memory constrained machine" premise:
// the profiles of at most two partitions (plus fixed-size bookkeeping)
// may be resident at once. A limit of 0 or less means unlimited.
type Budget struct {
	mu    sync.Mutex
	limit int64
	used  int64
	peak  int64
}

// NewBudget returns a budget with the given byte limit (≤0 = unlimited).
func NewBudget(limit int64) *Budget {
	return &Budget{limit: limit}
}

// Limit reports the configured limit.
func (b *Budget) Limit() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limit
}

// Used reports the currently reserved bytes.
func (b *Budget) Used() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Peak reports the maximum bytes ever reserved at once.
func (b *Budget) Peak() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// Reserve charges n bytes. It fails with ErrBudgetExceeded (leaving
// usage unchanged) if the reservation would exceed the limit.
func (b *Budget) Reserve(n int64) error {
	if n < 0 {
		return fmt.Errorf("disk: negative reservation %d", n)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.limit > 0 && b.used+n > b.limit {
		return fmt.Errorf("%w: used %d + want %d > limit %d", ErrBudgetExceeded, b.used, n, b.limit)
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return nil
}

// Release returns n bytes to the budget. Releasing more than is used
// clamps to zero (and is a caller bug, but must not corrupt accounting).
func (b *Budget) Release(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= n
	if b.used < 0 {
		b.used = 0
	}
}
