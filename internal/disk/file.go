package disk

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// WriteFile writes data to path in one sequential pass, recording one
// seek (the open positions the head) and one write in stats.
func WriteFile(stats *IOStats, path string, data []byte) error {
	stats.AddSeek()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("disk: write %s: %w", path, err)
	}
	stats.AddWrite(int64(len(data)))
	return nil
}

// ReadFile reads path fully in one sequential pass, recording one seek
// and one read in stats.
func ReadFile(stats *IOStats, path string) ([]byte, error) {
	stats.AddSeek()
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("disk: read %s: %w", path, err)
	}
	stats.AddRead(int64(len(data)))
	return data, nil
}

// Remove deletes path, ignoring already-missing files.
func Remove(path string) error {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("disk: remove %s: %w", path, err)
	}
	return nil
}

// RecordWriter appends length-prefixed records to a file through a
// buffered sequential writer. It is the spill format of the tuple hash
// table: each record is an opaque byte payload.
type RecordWriter struct {
	f     *os.File
	w     *bufio.Writer
	stats *IOStats
	n     int64
}

// CreateRecordFile creates (or truncates) a record file at path.
func CreateRecordFile(stats *IOStats, path string) (*RecordWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("disk: create record file %s: %w", path, err)
	}
	stats.AddSeek()
	return &RecordWriter{f: f, w: bufio.NewWriterSize(f, 1<<16), stats: stats}, nil
}

// Append writes one record.
func (rw *RecordWriter) Append(rec []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(rec)))
	if _, err := rw.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("disk: append record header: %w", err)
	}
	if _, err := rw.w.Write(rec); err != nil {
		return fmt.Errorf("disk: append record payload: %w", err)
	}
	rw.stats.AddWrite(int64(4 + len(rec)))
	rw.n++
	return nil
}

// Count reports the number of records appended so far.
func (rw *RecordWriter) Count() int64 { return rw.n }

// Close flushes and closes the file.
func (rw *RecordWriter) Close() error {
	if err := rw.w.Flush(); err != nil {
		rw.f.Close()
		return fmt.Errorf("disk: flush record file: %w", err)
	}
	if err := rw.f.Close(); err != nil {
		return fmt.Errorf("disk: close record file: %w", err)
	}
	return nil
}

// RecordReader streams records back from a file written by RecordWriter.
type RecordReader struct {
	f     *os.File
	r     *bufio.Reader
	stats *IOStats
}

// OpenRecordFile opens a record file for sequential reading.
func OpenRecordFile(stats *IOStats, path string) (*RecordReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("disk: open record file %s: %w", path, err)
	}
	stats.AddSeek()
	return &RecordReader{f: f, r: bufio.NewReaderSize(f, 1<<16), stats: stats}, nil
}

// Next returns the next record, or io.EOF after the last one. The
// returned slice is freshly allocated and owned by the caller.
func (rr *RecordReader) Next() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("disk: read record header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	rec := make([]byte, n)
	if _, err := io.ReadFull(rr.r, rec); err != nil {
		return nil, fmt.Errorf("disk: read record payload (%d bytes): %w", n, err)
	}
	rr.stats.AddRead(int64(4 + n))
	return rec, nil
}

// Close closes the underlying file.
func (rr *RecordReader) Close() error {
	if err := rr.f.Close(); err != nil {
		return fmt.Errorf("disk: close record reader: %w", err)
	}
	return nil
}
