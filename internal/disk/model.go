package disk

import (
	"fmt"
	"time"
)

// Model is an analytic disk cost model: it converts measured IOStats
// into an estimated device-time figure. The paper's future work proposes
// evaluating the system on HDD and SSD; because benchmark hosts differ,
// the reproduction measures real byte/seek counts and projects them
// through these models, which preserves the HDD-vs-SSD relationship
// independent of the host's actual storage.
type Model struct {
	// Name identifies the model in experiment output.
	Name string
	// SeekLatency is the cost of one random access.
	SeekLatency time.Duration
	// ReadBandwidth is the sequential read rate in bytes/second.
	ReadBandwidth int64
	// WriteBandwidth is the sequential write rate in bytes/second.
	WriteBandwidth int64
}

// Preset models. Figures are nominal mid-2010s commodity-PC values (the
// paper's hardware class): a 7200 RPM SATA disk, a SATA SSD, and a
// modern NVMe drive as an extension point.
var (
	// HDD models a 7200 RPM spinning disk.
	HDD = Model{
		Name:           "hdd",
		SeekLatency:    9 * time.Millisecond,
		ReadBandwidth:  120 << 20,
		WriteBandwidth: 110 << 20,
	}
	// SSD models a SATA solid-state drive.
	SSD = Model{
		Name:           "ssd",
		SeekLatency:    90 * time.Microsecond,
		ReadBandwidth:  520 << 20,
		WriteBandwidth: 450 << 20,
	}
	// NVMe models a PCIe solid-state drive.
	NVMe = Model{
		Name:           "nvme",
		SeekLatency:    15 * time.Microsecond,
		ReadBandwidth:  3200 << 20,
		WriteBandwidth: 2500 << 20,
	}
)

// ResolveModel resolves a preset model name for configuration
// plumbing: "" means no model (nil), anything else must name a preset.
func ResolveModel(name string) (*Model, error) {
	if name == "" {
		return nil, nil
	}
	m, ok := ModelByName(name)
	if !ok {
		return nil, fmt.Errorf("disk: unknown disk model %q", name)
	}
	return &m, nil
}

// ModelByName returns a preset model by name, reporting false for
// unknown names.
func ModelByName(name string) (Model, bool) {
	switch name {
	case "hdd":
		return HDD, true
	case "ssd":
		return SSD, true
	case "nvme":
		return NVMe, true
	default:
		return Model{}, false
	}
}

// EstimateTime projects the measured counters onto the model:
// seeks × seek latency + bytes ÷ bandwidth.
func (m Model) EstimateTime(s Snapshot) time.Duration {
	d := time.Duration(s.Seeks) * m.SeekLatency
	if m.ReadBandwidth > 0 {
		d += time.Duration(float64(s.BytesRead) / float64(m.ReadBandwidth) * float64(time.Second))
	}
	if m.WriteBandwidth > 0 {
		d += time.Duration(float64(s.BytesWritten) / float64(m.WriteBandwidth) * float64(time.Second))
	}
	return d
}

// ReadTime models one random read access of n bytes: a seek plus the
// transfer at sequential read bandwidth.
func (m Model) ReadTime(n int64) time.Duration {
	d := m.SeekLatency
	if m.ReadBandwidth > 0 {
		d += time.Duration(float64(n) / float64(m.ReadBandwidth) * float64(time.Second))
	}
	return d
}

// WriteTime models one random write access of n bytes: a seek plus the
// transfer at sequential write bandwidth.
func (m Model) WriteTime(n int64) time.Duration {
	d := m.SeekLatency
	if m.WriteBandwidth > 0 {
		d += time.Duration(float64(n) / float64(m.WriteBandwidth) * float64(time.Second))
	}
	return d
}

// AppendTime models one sequential append of n bytes — a write landing
// at the journal tail the head is already parked on, so no seek, just
// transfer at sequential write bandwidth. This is the write path of a
// log-structured store (every production KV write path: WAL first),
// which is how the network state store absorbs worker partials.
func (m Model) AppendTime(n int64) time.Duration {
	if m.WriteBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(m.WriteBandwidth) * float64(time.Second))
}

// Throughput reports the effective bytes/second the model would achieve
// on the measured workload (total bytes over estimated time), the
// "throughput from the disk IO operations" metric named in the paper's
// future work. It returns 0 for an empty workload.
func (m Model) Throughput(s Snapshot) float64 {
	total := s.BytesRead + s.BytesWritten
	if total == 0 {
		return 0
	}
	t := m.EstimateTime(s)
	if t <= 0 {
		return 0
	}
	return float64(total) / t.Seconds()
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("%s(seek=%v, read=%dMB/s, write=%dMB/s)",
		m.Name, m.SeekLatency, m.ReadBandwidth>>20, m.WriteBandwidth>>20)
}
