package disk

import (
	"sync"
	"time"
)

// Device enforces a cost model's latency as wall time, emulating one
// physical storage device shared by every I/O stream of the engine.
// Concurrent accessors — the phase-4 cursor's loads, the background
// write-back goroutines, and shard prefetch readers — queue for the
// device rather than sleeping in parallel: the modeled hardware is a
// single spindle/controller, so giving it unlimited internal
// parallelism would overstate every pipelining win. Only the modeled
// sleep is serialized; the host's real file I/O still overlaps freely.
//
// time.Sleep overshoots sub-millisecond requests badly (timer
// granularity), which would inflate fast models like NVMe several-fold;
// instead each access adds its modeled duration to a debt and the
// device sleeps only when ≥ 1ms is owed, crediting back the actually
// elapsed time, so aggregate device time stays exact.
type Device struct {
	model Model
	name  string

	mu      sync.Mutex
	debt    time.Duration
	modeled time.Duration // total duration ever charged
	slept   time.Duration // total wall time actually slept

	// The fault hook lives under its own lock so installing or
	// consulting it never queues behind the spindle mutex (whose
	// critical section includes the modeled sleep). See fault.go.
	hookMu sync.Mutex
	hook   FaultHook
}

// NewDevice returns an emulated device for the model. A nil receiver is
// valid everywhere and adds no latency, so callers plumb one pointer
// without nil checks.
func NewDevice(m Model) *Device {
	return &Device{model: m}
}

// NewNamedDevice returns an emulated device labeled for per-spindle
// accounting — e.g. one device per state-store shard, so IOStats can
// report where modeled device time was spent (see IOStats.RegisterDevice).
func NewNamedDevice(m Model, name string) *Device {
	return &Device{model: m, name: name}
}

// Name reports the device's accounting label ("" for an unnamed or nil
// device).
func (d *Device) Name() string {
	if d == nil {
		return ""
	}
	return d.name
}

// Model reports the device's cost model (the zero Model for a nil
// device).
func (d *Device) Model() Model {
	if d == nil {
		return Model{}
	}
	return d.model
}

// Read queues for the device and holds it for the modeled time of one
// random read of n bytes.
func (d *Device) Read(n int64) {
	if d == nil {
		return
	}
	d.access(d.model.ReadTime(n))
}

// Write queues for the device and holds it for the modeled time of one
// random write of n bytes.
func (d *Device) Write(n int64) {
	if d == nil {
		return
	}
	d.access(d.model.WriteTime(n))
}

// Append queues for the device and holds it for the modeled time of
// one sequential journal append of n bytes (transfer only — the head
// is already at the log tail).
func (d *Device) Append(n int64) {
	if d == nil {
		return
	}
	d.access(d.model.AppendTime(n))
}

// access serializes the modeled duration of one access (amortized
// across accesses to dodge timer granularity — see the type comment).
// Both the debt bookkeeping and the sleep run under the mutex: the
// sleep IS the device being busy, so concurrent accessors queue behind
// it, and because the elapsed time is measured and credited inside the
// same critical section, no two accessors can ever observe (and
// credit) the same elapsed wall time twice. The invariant, preserved
// verbatim under any number of concurrent accessors, is
//
//	modeled == slept + debt
//
// which is what keeps aggregate modeled device time exact (±1ms of
// never-yet-slept debt) — see Accounting and the concurrency test.
func (d *Device) access(t time.Duration) {
	d.mu.Lock()
	d.modeled += t
	d.debt += t
	if d.debt >= time.Millisecond {
		start := time.Now()
		//knnlint:ignore locksleep the spindle mutex IS the queue: sleeping under it is how one emulated disk arm serializes concurrent accessors (see the access doc comment)
		time.Sleep(d.debt)
		elapsed := time.Since(start)
		d.slept += elapsed
		d.debt -= elapsed
	}
	d.mu.Unlock()
}

// Accounting reports the device's cumulative bookkeeping: the total
// modeled duration ever charged, the wall time actually slept, and the
// outstanding debt (negative when a sleep overshot; the overshoot is
// credited against future accesses so the aggregate stays exact). For
// any consistent snapshot, modeled == slept + debt. A nil device
// reports zeros.
func (d *Device) Accounting() (modeled, slept, debt time.Duration) {
	if d == nil {
		return 0, 0, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.modeled, d.slept, d.debt
}
