package disk

import (
	"sync"
	"time"
)

// Device enforces a cost model's latency as wall time, emulating one
// physical storage device shared by every I/O stream of the engine.
// Concurrent accessors — the phase-4 cursor's loads, the background
// write-back goroutines, and shard prefetch readers — queue for the
// device rather than sleeping in parallel: the modeled hardware is a
// single spindle/controller, so giving it unlimited internal
// parallelism would overstate every pipelining win. Only the modeled
// sleep is serialized; the host's real file I/O still overlaps freely.
//
// time.Sleep overshoots sub-millisecond requests badly (timer
// granularity), which would inflate fast models like NVMe several-fold;
// instead each access adds its modeled duration to a debt and the
// device sleeps only when ≥ 1ms is owed, crediting back the actually
// elapsed time, so aggregate device time stays exact.
type Device struct {
	model Model

	mu   sync.Mutex
	debt time.Duration
}

// NewDevice returns an emulated device for the model. A nil receiver is
// valid everywhere and adds no latency, so callers plumb one pointer
// without nil checks.
func NewDevice(m Model) *Device {
	return &Device{model: m}
}

// Model reports the device's cost model (the zero Model for a nil
// device).
func (d *Device) Model() Model {
	if d == nil {
		return Model{}
	}
	return d.model
}

// Read queues for the device and holds it for the modeled time of one
// random read of n bytes.
func (d *Device) Read(n int64) {
	if d == nil {
		return
	}
	d.access(d.model.ReadTime(n))
}

// Write queues for the device and holds it for the modeled time of one
// random write of n bytes.
func (d *Device) Write(n int64) {
	if d == nil {
		return
	}
	d.access(d.model.WriteTime(n))
}

// access serializes the modeled duration of one access (amortized
// across accesses to dodge timer granularity — see the type comment).
func (d *Device) access(t time.Duration) {
	d.mu.Lock()
	d.debt += t
	if d.debt >= time.Millisecond {
		start := time.Now()
		time.Sleep(d.debt)
		d.debt -= time.Since(start)
	}
	d.mu.Unlock()
}
