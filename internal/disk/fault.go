package disk

import (
	"time"
)

// AccessKind names the device access class a fault hook is consulted
// for — the same three classes the cost model prices.
type AccessKind uint8

const (
	// AccessRead is a random read.
	AccessRead AccessKind = iota
	// AccessWrite is a random write.
	AccessWrite
	// AccessAppend is a sequential journal append.
	AccessAppend
)

// String names the access kind for diagnostics.
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessAppend:
		return "append"
	default:
		return "unknown"
	}
}

// FaultHook decides one access's injected faults: an extra stall
// (beyond the modeled time) and/or a transient error. Hooks must be
// safe for concurrent use; internal/fault derives deterministic seeded
// hooks, but any function of this shape plugs in.
type FaultHook func(kind AccessKind, n int64) (time.Duration, error)

// SetFaultHook installs (or, with nil, removes) the device's fault
// hook. Safe to call on a nil device (no-op) and concurrently with
// accesses.
func (d *Device) SetFaultHook(h FaultHook) {
	if d == nil {
		return
	}
	d.hookMu.Lock()
	d.hook = h
	d.hookMu.Unlock()
}

// Fault consults the device's fault hook for one prospective access,
// sleeping any injected stall and returning any injected error. The
// stall is injected chaos, not modeled device time — it bypasses the
// debt accounting on purpose, so the modeled == slept + debt invariant
// and every Table 1 measurement stay exact under fault injection.
// Callers gate the access on the returned error before charging the
// device. A nil device or absent hook injects nothing.
func (d *Device) Fault(kind AccessKind, n int64) error {
	if d == nil {
		return nil
	}
	d.hookMu.Lock()
	h := d.hook
	d.hookMu.Unlock()
	if h == nil {
		return nil
	}
	delay, err := h(kind, n)
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}
