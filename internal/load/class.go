package load

import (
	"context"
	"errors"
	"io"
	"net"
	"syscall"
)

// Class buckets one failed op by cause, so a chaos run's report
// separates "the server shed load as designed" from "the protocol
// broke" — the same total error count can mean either.
type Class uint8

const (
	// ClassTimeout is a deadline failure: the request (or its dial)
	// exceeded its budget.
	ClassTimeout Class = iota
	// ClassRefused is a connection-level failure — refused, reset, or
	// closed mid-exchange. The shape a dead or restarting server (or an
	// injected connection drop) presents.
	ClassRefused
	// ClassShed is an explicit 503 + Retry-After overload refusal: the
	// server chose not to serve. Bounded sheds under burst are a
	// designed behavior, not a defect.
	ClassShed
	// ClassProtocol is everything else: malformed frames, schema
	// drift, wrong-answer echoes. Never acceptable.
	ClassProtocol
	// NumClasses sizes per-class arrays.
	NumClasses
)

// String names the class for report tables.
func (c Class) String() string {
	switch c {
	case ClassTimeout:
		return "timeout"
	case ClassRefused:
		return "refused"
	case ClassShed:
		return "shed"
	case ClassProtocol:
		return "protocol"
	}
	return "unknown"
}

// ErrShed marks an op the server refused with 503 — the HTTP target
// wraps overload answers in it so Classify can tell a shed from a
// protocol failure.
var ErrShed = errors.New("load: shed")

// Classify buckets a non-nil, non-ErrMiss op error. The first match
// wins in severity-of-signal order: an explicit shed is the clearest,
// then deadline failures, then connection-level failures; anything
// unrecognized is a protocol error — the bucket that should stay zero.
func Classify(err error) Class {
	var ne net.Error
	switch {
	case errors.Is(err, ErrShed):
		return ClassShed
	case errors.Is(err, context.DeadlineExceeded),
		errors.As(err, &ne) && ne.Timeout():
		return ClassTimeout
	case errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed):
		return ClassRefused
	default:
		return ClassProtocol
	}
}
