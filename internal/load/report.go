package load

import (
	"fmt"
	"io"
	"time"
)

// ms renders a duration as fractional milliseconds for tables.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteTable renders the run as a human-readable report: one windowed
// row per time bucket (reads and writes separately, so a burst or a
// phase-4 I/O storm is visible as a line, not an average), then the
// per-op-type totals.
func (r *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "target %s: %d ops in %.2fs (window %s)\n",
		r.Target, r.Ops(), r.Wall.Seconds(), r.Window)
	fmt.Fprintln(w, "window      reads  r-p50ms  r-p99ms   writes  w-p50ms  w-p99ms")
	for _, win := range r.Windows() {
		reads := win.Ops[Neighbors] + win.Ops[Profile]
		// Merge the two read kinds' percentiles conservatively: show
		// the slower of the two at each quantile.
		rp50 := max(win.P50[Neighbors], win.P50[Profile])
		rp99 := max(win.P99[Neighbors], win.P99[Profile])
		fmt.Fprintf(w, "%7s  %7d  %7.2f  %7.2f  %7d  %7.2f  %7.2f\n",
			win.Start.Truncate(time.Millisecond), reads, ms(rp50), ms(rp99),
			win.Ops[Update], ms(win.P50[Update]), ms(win.P99[Update]))
	}
	fmt.Fprintln(w, "op         count    ops/s   meanms    p50ms    p95ms    p99ms  misses  errors  timeout  refused  shed  proto")
	for k := Kind(0); k < NumKinds; k++ {
		kr := r.Kinds[k]
		if kr.Ops == 0 {
			continue
		}
		fmt.Fprintf(w, "%-9s %6d  %7.0f  %7.2f  %7.2f  %7.2f  %7.2f  %6d  %6d  %7d  %7d  %4d  %5d\n",
			k, kr.Ops, kr.Throughput, ms(kr.Mean), ms(kr.P50), ms(kr.P95), ms(kr.P99),
			kr.Misses, kr.Errors,
			kr.Classes[ClassTimeout], kr.Classes[ClassRefused], kr.Classes[ClassShed], kr.Classes[ClassProtocol])
		if kr.FirstError != "" {
			fmt.Fprintf(w, "          first error: %s\n", kr.FirstError)
		}
	}
}

// WriteBench renders the run as `go test -bench`-shaped lines that
// cmd/benchjson parses, one per op type, under benchName
// (e.g. "BenchmarkKNNLoad"): iteration count, mean ns/op, then
// p50/p95/p99 and throughput as custom metrics. Piping this into
// `benchjson` yields a document the CI gate can diff like any other.
func (r *Result) WriteBench(w io.Writer, benchName string) {
	for k := Kind(0); k < NumKinds; k++ {
		kr := r.Kinds[k]
		if kr.Ops == 0 {
			continue
		}
		fmt.Fprintf(w, "%s/%s/%s %d %d ns/op %.3f p50-ms %.3f p95-ms %.3f p99-ms %.0f ops/s %d misses %d errors\n",
			benchName, r.Target, k, kr.Ops, kr.Mean.Nanoseconds(),
			ms(kr.P50), ms(kr.P95), ms(kr.P99), kr.Throughput, kr.Misses, kr.Errors)
	}
}

// WriteComparison renders a p50/p99 cross-target table — the view
// that answers "did the replica tier beat the primaries at the tail".
func WriteComparison(w io.Writer, results []*Result) {
	if len(results) < 2 {
		return
	}
	fmt.Fprintln(w, "comparison (per op type, across targets):")
	fmt.Fprintf(w, "%-9s  %-12s  %8s  %8s  %8s  %8s\n", "op", "target", "ops/s", "p50ms", "p99ms", "errors")
	for k := Kind(0); k < NumKinds; k++ {
		for _, r := range results {
			kr := r.Kinds[k]
			if kr.Ops == 0 {
				continue
			}
			fmt.Fprintf(w, "%-9s  %-12s  %8.0f  %8.2f  %8.2f  %8d\n",
				k, r.Target, kr.Throughput, ms(kr.P50), ms(kr.P99), kr.Errors)
		}
	}
}
