package load

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knnpc/internal/latency"
)

// RunConfig tunes the replay of a plan.
type RunConfig struct {
	// Concurrency is the number of worker goroutines executing ops
	// (default 8). Open-loop: when every worker is busy, dispatched
	// ops queue and their queueing delay counts as latency.
	Concurrency int
	// Window is the time-bucket width for windowed percentiles
	// (default 1s).
	Window time.Duration
}

// kindAccum accumulates one op kind's live counters during a run.
type kindAccum struct {
	ops     atomic.Uint64
	errors  atomic.Uint64
	misses  atomic.Uint64
	classes [NumClasses]atomic.Uint64
	hist    latency.Histogram
}

// Run replays the plan against the target open-loop and aggregates
// per-kind and per-window statistics. Each op's latency is measured
// from its *scheduled* start, so server-side backpressure shows up as
// tail latency instead of disappearing into a slowed-down driver.
// The first error string per kind is retained for diagnosis; the run
// itself only aborts on ctx cancellation.
func Run(ctx context.Context, target Target, plan []Op, cfg RunConfig) (*Result, error) {
	if len(plan) == 0 {
		return nil, fmt.Errorf("load: empty plan")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	numWindows := int(plan[len(plan)-1].At/cfg.Window) + 1
	res := &Result{
		Target:  target.Name(),
		Window:  cfg.Window,
		windows: make([]windowAccum, numWindows),
	}
	for w := range res.windows {
		for k := range res.windows[w].hists {
			res.windows[w].hists[k] = &latency.Histogram{}
		}
	}
	var kinds [NumKinds]kindAccum
	var firstErr [NumKinds]atomic.Pointer[string]

	// Buffered to the whole plan so the dispatcher never blocks on
	// slow workers — that would close the loop.
	ch := make(chan Op, len(plan))
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range ch {
				err := target.Do(op)
				lat := time.Since(start.Add(op.At))
				acc := &kinds[op.Kind]
				acc.ops.Add(1)
				switch {
				case err == nil:
				case err == ErrMiss:
					acc.misses.Add(1)
				default:
					acc.errors.Add(1)
					acc.classes[Classify(err)].Add(1)
					msg := err.Error()
					firstErr[op.Kind].CompareAndSwap(nil, &msg)
				}
				acc.hist.Observe(lat)
				res.windows[int(op.At/cfg.Window)].hists[op.Kind].Observe(lat)
			}
		}()
	}

	var dispatchErr error
dispatch:
	for _, op := range plan {
		if wait := time.Until(start.Add(op.At)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				dispatchErr = ctx.Err()
				break dispatch
			}
		} else if ctx.Err() != nil {
			dispatchErr = ctx.Err()
			break dispatch
		}
		ch <- op
	}
	close(ch)
	wg.Wait()
	res.Wall = time.Since(start)

	for k := range kinds {
		acc := &kinds[k]
		s := acc.hist.Snapshot()
		r := KindReport{
			Ops:    acc.ops.Load(),
			Errors: acc.errors.Load(),
			Misses: acc.misses.Load(),
			Mean:   s.Mean(),
			P50:    s.Quantile(0.50),
			P95:    s.Quantile(0.95),
			P99:    s.Quantile(0.99),
		}
		for c := range r.Classes {
			r.Classes[c] = acc.classes[c].Load()
		}
		if res.Wall > 0 {
			r.Throughput = float64(r.Ops) / res.Wall.Seconds()
		}
		if msg := firstErr[k].Load(); msg != nil {
			r.FirstError = *msg
		}
		res.Kinds[k] = r
	}
	return res, dispatchErr
}

// KindReport is one op type's aggregate over a finished run.
type KindReport struct {
	// Ops is the number of operations executed (including errors and
	// misses).
	Ops uint64
	// Errors counts protocol or transport failures.
	Errors uint64
	// Classes breaks Errors down by cause (indexed by Class); the
	// entries sum to Errors.
	Classes [NumClasses]uint64
	// Misses counts not-in-any-published-view answers.
	Misses uint64
	// Throughput is Ops divided by the run's wall time, in ops/s.
	Throughput float64
	// Mean, P50, P95 and P99 are scheduled-start-to-completion
	// latencies.
	Mean time.Duration
	// P50 is the median latency.
	P50 time.Duration
	// P95 is the 95th-percentile latency.
	P95 time.Duration
	// P99 is the 99th-percentile latency.
	P99 time.Duration
	// FirstError is the first failure message seen for this kind
	// ("" when none) — the shortest path from a red CI run to a
	// cause.
	FirstError string
}

// windowAccum holds one time bucket's live histograms.
type windowAccum struct {
	hists [NumKinds]*latency.Histogram
}

// WindowReport is one time bucket of a finished run.
type WindowReport struct {
	// Start is the window's offset from the run start.
	Start time.Duration
	// Ops, P50 and P99 are per kind, indexed by Kind.
	Ops [NumKinds]uint64
	// P50 is the per-kind median latency within the window.
	P50 [NumKinds]time.Duration
	// P99 is the per-kind 99th-percentile latency within the window.
	P99 [NumKinds]time.Duration
}

// Result is a finished run: per-kind aggregates plus the windowed
// series.
type Result struct {
	// Target is the label of the target that served the run.
	Target string
	// Wall is the measured wall time from first dispatch to last
	// completion.
	Wall time.Duration
	// Window is the time-bucket width the windowed series uses.
	Window time.Duration
	// Kinds aggregates each op type, indexed by Kind.
	Kinds [NumKinds]KindReport

	windows []windowAccum
}

// Errors sums protocol errors across op kinds.
func (r *Result) Errors() uint64 {
	var n uint64
	for k := range r.Kinds {
		n += r.Kinds[k].Errors
	}
	return n
}

// ClassErrors sums one failure class across op kinds.
func (r *Result) ClassErrors(c Class) uint64 {
	var n uint64
	for k := range r.Kinds {
		n += r.Kinds[k].Classes[c]
	}
	return n
}

// Misses sums not-served answers across op kinds.
func (r *Result) Misses() uint64 {
	var n uint64
	for k := range r.Kinds {
		n += r.Kinds[k].Misses
	}
	return n
}

// Ops sums executed operations across op kinds.
func (r *Result) Ops() uint64 {
	var n uint64
	for k := range r.Kinds {
		n += r.Kinds[k].Ops
	}
	return n
}

// Windows materializes the windowed series.
func (r *Result) Windows() []WindowReport {
	out := make([]WindowReport, len(r.windows))
	for w := range r.windows {
		rep := WindowReport{Start: time.Duration(w) * r.Window}
		for k, h := range r.windows[w].hists {
			s := h.Snapshot()
			rep.Ops[k] = s.Count()
			rep.P50[k] = s.Quantile(0.50)
			rep.P99[k] = s.Quantile(0.99)
		}
		out[w] = rep
	}
	return out
}
