package load

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"knnpc/internal/api"
)

// timeoutErr is a minimal net.Error whose Timeout() is true — the
// shape http.Client deadline failures arrive in.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{fmt.Errorf("%w: HTTP 503", ErrShed), ClassShed},
		{context.DeadlineExceeded, ClassTimeout},
		{fmt.Errorf("get: %w", context.DeadlineExceeded), ClassTimeout},
		{&net.OpError{Op: "read", Err: timeoutErr{}}, ClassTimeout},
		{syscall.ECONNREFUSED, ClassRefused},
		{fmt.Errorf("dial: %w", syscall.ECONNREFUSED), ClassRefused},
		{syscall.ECONNRESET, ClassRefused},
		{syscall.EPIPE, ClassRefused},
		{io.EOF, ClassRefused},
		{io.ErrUnexpectedEOF, ClassRefused},
		{net.ErrClosed, ClassRefused},
		{errors.New("load: neighbors answer for user 3, asked 7"), ClassProtocol},
		{fmt.Errorf("load: HTTP 500"), ClassProtocol},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// A shed arrives wrapped even when it carries the JSON error shape,
// and a timeout wins over the connection bucket when both could match.
func TestClassifyShedBeatsTimeout(t *testing.T) {
	err := fmt.Errorf("%w: %w", ErrShed, context.DeadlineExceeded)
	if got := Classify(err); got != ClassShed {
		t.Fatalf("Classify(shed+timeout) = %s, want shed", got)
	}
}

// TestHTTPTarget503IsShed: a 503 answer from a real HTTP exchange —
// with and without the v1 JSON error body — classifies as a shed, not
// a protocol error.
func TestHTTPTarget503IsShed(t *testing.T) {
	for _, jsonBody := range []bool{true, false} {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			if jsonBody {
				fmt.Fprintf(w, `{"error": "overloaded"}`)
			}
		}))
		tgt := NewHTTPTarget("shedding", srv.URL, time.Second)
		err := tgt.Do(Op{Kind: Neighbors, User: 7})
		tgt.Close()
		srv.Close()
		if err == nil {
			t.Fatalf("jsonBody=%v: 503 produced no error", jsonBody)
		}
		if !errors.Is(err, ErrShed) {
			t.Fatalf("jsonBody=%v: 503 error %v does not wrap ErrShed", jsonBody, err)
		}
		if got := Classify(err); got != ClassShed {
			t.Fatalf("jsonBody=%v: Classify = %s, want shed", jsonBody, got)
		}
	}
}

// TestRunBooksClasses: a run against a target mixing sheds and
// connection failures reports the right per-class counts, and the
// class columns sum to the error total.
func TestRunBooksClasses(t *testing.T) {
	mux := http.NewServeMux()
	var n int
	mux.HandleFunc(api.PathNeighbors, func(w http.ResponseWriter, r *http.Request) {
		n++
		switch n % 3 {
		case 0:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.WriteHeader(http.StatusInternalServerError)
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tgt := NewHTTPTarget("mixed", srv.URL, time.Second)
	defer tgt.Close()
	plan, err := BuildPlan(PlanConfig{
		Users: 100, Items: 10, Ops: 30, Rate: 10000,
		Skew: 1.1, ProfileFrac: 0, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), tgt, plan, RunConfig{Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() != 30 {
		t.Fatalf("errors = %d, want 30", res.Errors())
	}
	if res.ClassErrors(ClassShed) != 10 {
		t.Fatalf("sheds = %d, want 10", res.ClassErrors(ClassShed))
	}
	if res.ClassErrors(ClassProtocol) != 20 {
		t.Fatalf("protocol = %d, want 20", res.ClassErrors(ClassProtocol))
	}
	var sum uint64
	for c := Class(0); c < NumClasses; c++ {
		sum += res.ClassErrors(c)
	}
	if sum != res.Errors() {
		t.Fatalf("class sum %d != errors %d", sum, res.Errors())
	}
}
