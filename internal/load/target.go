package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"knnpc/internal/api"
	"knnpc/internal/netstore"
	"knnpc/internal/profile"
)

// ErrMiss marks an op answered "user not in any published view" —
// counted separately from protocol errors, because a miss is a
// legitimate answer early in a run (before the first iteration
// commits) while an error never is.
var ErrMiss = errors.New("load: user not in any published view")

// Target is one system under test. Do executes a single op
// synchronously and reports nil (success), ErrMiss, or a protocol/
// transport error. Implementations must be safe for concurrent Do
// calls — the runner fans ops across many goroutines.
type Target interface {
	// Name labels the target in tables and bench lines.
	Name() string
	// Do executes one op.
	Do(op Op) error
	// Close releases the target's connections.
	Close() error
}

// HTTPTarget drives a knnserve front end over HTTP, decoding every
// answer through the shared api types — so a server that drifts from
// the pinned v1 schema fails loudly here, not silently in production.
type HTTPTarget struct {
	name string
	base string
	c    *http.Client
}

// NewHTTPTarget builds a target for a knnserve base URL
// ("http://host:port"). timeout bounds each request (0 = 5s).
func NewHTTPTarget(name, baseURL string, timeout time.Duration) *HTTPTarget {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &HTTPTarget{
		name: name,
		base: baseURL,
		c: &http.Client{
			Timeout: timeout,
			// Per-target transport so two targets in one process do
			// not share (and so skew) a connection pool.
			Transport: &http.Transport{MaxIdleConnsPerHost: 64},
		},
	}
}

// Name labels the target.
func (t *HTTPTarget) Name() string { return t.name }

// Close idles the connection pool.
func (t *HTTPTarget) Close() error {
	t.c.CloseIdleConnections()
	return nil
}

// Do executes one op against the HTTP API.
func (t *HTTPTarget) Do(op Op) error {
	switch op.Kind {
	case Neighbors:
		var out api.NeighborsResponse
		if err := t.get(fmt.Sprintf("%s%s%d", t.base, api.PathNeighbors, op.User), &out); err != nil {
			return err
		}
		if out.User != op.User {
			return fmt.Errorf("load: neighbors answer for user %d, asked %d", out.User, op.User)
		}
		return nil
	case Profile:
		var out api.ProfileResponse
		if err := t.get(fmt.Sprintf("%s%s/%d", t.base, api.PathProfile, op.User), &out); err != nil {
			return err
		}
		if out.User != op.User {
			return fmt.Errorf("load: profile answer for user %d, asked %d", out.User, op.User)
		}
		return nil
	case Update:
		body, err := json.Marshal(api.UpdateRequest{Updates: []api.ProfileUpdate{
			{User: op.User, Op: api.OpSet, Item: op.Item, Weight: op.Weight},
		}})
		if err != nil {
			return err
		}
		resp, err := t.c.Post(t.base+api.PathProfile, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer drain(resp.Body)
		if resp.StatusCode != http.StatusAccepted {
			return httpError(resp)
		}
		var out api.UpdateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return fmt.Errorf("load: bad update response: %w", err)
		}
		if out.Queued != 1 {
			return fmt.Errorf("load: queued %d updates, pushed 1", out.Queued)
		}
		return nil
	case AddUser:
		body, err := json.Marshal(api.UpsertRequest{Items: []api.ProfileItem{
			{Item: op.Item, Weight: op.Weight},
		}})
		if err != nil {
			return err
		}
		return t.mutate(http.MethodPut, op.User, bytes.NewReader(body), api.OpUpsert)
	case DelUser:
		return t.mutate(http.MethodDelete, op.User, nil, api.OpDelete)
	}
	return fmt.Errorf("load: unknown op kind %d", op.Kind)
}

// mutate issues a PUT or DELETE /v1/profile/{id} and checks the 202
// echo.
func (t *HTTPTarget) mutate(method string, user uint32, body io.Reader, wantOp string) error {
	req, err := http.NewRequest(method, fmt.Sprintf("%s%s/%d", t.base, api.PathProfile, user), body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.c.Do(req)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return httpError(resp)
	}
	var out api.MutationResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("load: bad mutation response: %w", err)
	}
	if out.User != user || out.Op != wantOp {
		return fmt.Errorf("load: mutation echo {%d %s}, want {%d %s}", out.User, out.Op, user, wantOp)
	}
	return nil
}

// get fetches a lookup URL and decodes a 200 into out.
func (t *HTTPTarget) get(url string, out any) error {
	resp, err := t.c.Get(url)
	if err != nil {
		return err
	}
	defer drain(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusNotFound:
		return ErrMiss
	default:
		return httpError(resp)
	}
}

// httpError turns a non-2xx answer into an error, preferring the v1
// JSON error shape when the body carries one. 503s wrap ErrShed so
// the runner books them as sheds, not protocol failures.
func httpError(resp *http.Response) error {
	sentinel := error(nil)
	if resp.StatusCode == http.StatusServiceUnavailable {
		sentinel = ErrShed
	}
	var e api.ErrorResponse
	if json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&e) == nil && e.Error != "" {
		if sentinel != nil {
			return fmt.Errorf("%w: HTTP %d: %s", sentinel, resp.StatusCode, e.Error)
		}
		return fmt.Errorf("load: HTTP %d: %s", resp.StatusCode, e.Error)
	}
	if sentinel != nil {
		return fmt.Errorf("%w: HTTP %d", sentinel, resp.StatusCode)
	}
	return fmt.Errorf("load: HTTP %d", resp.StatusCode)
}

// drain consumes and closes a response body so the connection is
// reusable.
func drain(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, 1<<16))
	body.Close()
}

// DirectTarget drives the netstore client directly — the same verbs
// knnserve issues, minus HTTP — so comparing it against an HTTPTarget
// on the same store isolates the front end's overhead.
type DirectTarget struct {
	name string
	c    netstore.ReadClient
}

// NewDirectTarget dials a store tier (primaries, or replicas for a
// read-only workload) as a direct load target.
func NewDirectTarget(name string, addrs []string, partitions int) (*DirectTarget, error) {
	c, err := netstore.DialRead(addrs, partitions)
	if err != nil {
		return nil, fmt.Errorf("load: dial %s: %w", name, err)
	}
	return &DirectTarget{name: name, c: c}, nil
}

// Name labels the target.
func (t *DirectTarget) Name() string { return t.name }

// Close releases the store client.
func (t *DirectTarget) Close() error { return t.c.Close() }

// Do executes one op against the store protocol.
func (t *DirectTarget) Do(op Op) error {
	switch op.Kind {
	case Neighbors:
		_, _, err := t.c.Neighbors(op.User)
		return missOr(err)
	case Profile:
		_, blob, err := t.c.ProfileBytes(op.User)
		if err != nil {
			return missOr(err)
		}
		// Decode like the HTTP path does, so both targets do the same
		// work per op and corrupt blobs surface as errors.
		if _, rest, err := profile.DecodeVector(blob); err != nil || len(rest) != 0 {
			return fmt.Errorf("load: corrupt profile for user %d: %v", op.User, err)
		}
		return nil
	case Update:
		return t.c.PushUpdates([]profile.Update{
			{User: op.User, Kind: profile.SetItem, Item: op.Item, Weight: op.Weight},
		})
	case AddUser:
		m, ok := t.c.(mutator)
		if !ok {
			return fmt.Errorf("load: target %s cannot add users", t.name)
		}
		vec, err := profile.NewVector([]profile.Entry{{Item: op.Item, Weight: op.Weight}})
		if err != nil {
			return err
		}
		return m.AddUser(op.User, vec.AppendBinary(nil))
	case DelUser:
		m, ok := t.c.(mutator)
		if !ok {
			return fmt.Errorf("load: target %s cannot delete users", t.name)
		}
		return m.DelUser(op.User)
	}
	return fmt.Errorf("load: unknown op kind %d", op.Kind)
}

// mutator is the whole-user mutation surface of the full store client.
// ReadClient deliberately omits it (replica tiers are read-only), so
// DirectTarget discovers it by assertion at op time — DialRead hands
// back the full client, which satisfies this on primary tiers.
type mutator interface {
	AddUser(u uint32, profileBlob []byte) error
	DelUser(u uint32) error
}

// missOr maps the store's not-served sentinel onto ErrMiss.
func missOr(err error) error {
	if errors.Is(err, netstore.ErrNotServed) {
		return ErrMiss
	}
	return err
}

// RoundRobinTarget rotates ops across a fixed set of equivalent
// targets — the client-side stand-in for a load balancer in front of
// several replica sets, used by the FW-10 replica-count sweep. Do is
// safe for concurrent use when every underlying target's Do is.
type RoundRobinTarget struct {
	name    string
	next    atomic.Uint64
	targets []Target
}

// NewRoundRobinTarget builds a rotating target over the given
// backends. The backends are owned by the result: Close closes them
// all.
func NewRoundRobinTarget(name string, targets []Target) (*RoundRobinTarget, error) {
	if len(targets) == 0 {
		return nil, errors.New("load: round-robin over zero targets")
	}
	return &RoundRobinTarget{name: name, targets: targets}, nil
}

// Name labels the target.
func (t *RoundRobinTarget) Name() string { return t.name }

// Do executes one op on the next backend in rotation.
func (t *RoundRobinTarget) Do(op Op) error {
	return t.targets[(t.next.Add(1)-1)%uint64(len(t.targets))].Do(op)
}

// Close closes every backend, returning the first error.
func (t *RoundRobinTarget) Close() error {
	var first error
	for _, b := range t.targets {
		if err := b.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
