package load

import (
	"context"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"knnpc/internal/netstore"
	"knnpc/internal/profile"
	"knnpc/internal/serve"
)

// planCfg is a baseline config tests tweak per case.
func planCfg() PlanConfig {
	return PlanConfig{
		Users: 500, Items: 2000, Ops: 4000,
		Rate: 4000, Skew: 1.3,
		WriteFrac: 0.1, ProfileFrac: 0.3,
		Seed: 7,
	}
}

// TestPlanDeterministic is the fixed-seed contract: equal configs
// build bit-identical op sequences; a different seed does not.
func TestPlanDeterministic(t *testing.T) {
	a, err := BuildPlan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config produced different plans")
	}
	cfg := planCfg()
	cfg.Seed = 8
	c, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestPlanValidation rejects degenerate configs.
func TestPlanValidation(t *testing.T) {
	for name, mut := range map[string]func(*PlanConfig){
		"zero users":       func(c *PlanConfig) { c.Users = 0 },
		"zero rate":        func(c *PlanConfig) { c.Rate = 0 },
		"skew at 1":        func(c *PlanConfig) { c.Skew = 1 },
		"writefrac 1":      func(c *PlanConfig) { c.WriteFrac = 1 },
		"negative addfrac": func(c *PlanConfig) { c.AddFrac = -0.1 },
		"fracs sum to 1":   func(c *PlanConfig) { c.AddFrac = 0.5; c.DelFrac = 0.4 },
		"burst no len":     func(c *PlanConfig) { c.Burst = 4; c.BurstEvery = time.Second },
		"burst len>every":  func(c *PlanConfig) { c.Burst = 4; c.BurstEvery = time.Second; c.BurstLen = 2 * time.Second },
	} {
		cfg := planCfg()
		mut(&cfg)
		if _, err := BuildPlan(cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestPlanArrival: scheduled times are monotone, the overall duration
// matches ops/rate, and burst windows are denser than steady-state.
func TestPlanArrival(t *testing.T) {
	cfg := planCfg()
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(plan); i++ {
		if plan[i].At < plan[i-1].At {
			t.Fatalf("op %d scheduled before op %d", i, i-1)
		}
	}
	want := float64(cfg.Ops) / cfg.Rate
	if got := plan[len(plan)-1].At.Seconds(); math.Abs(got-want) > want*0.01 {
		t.Fatalf("plan spans %.3fs, want ≈%.3fs", got, want)
	}

	cfg.Burst, cfg.BurstEvery, cfg.BurstLen = 4, time.Second, 250*time.Millisecond
	// One period at rate R with a 4x burst quarter holds 1.75R ops;
	// span two full periods so the burst/steady split is measurable.
	cfg.Ops = 14000
	burst, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inBurst, steady := 0, 0
	for _, op := range burst {
		if op.At.Seconds()-math.Floor(op.At.Seconds()) < 0.25 {
			inBurst++
		} else {
			steady++
		}
	}
	// Burst quarter at 4x vs three steady quarters at 1x → the burst
	// window should hold ≈4/7 of all ops.
	frac := float64(inBurst) / float64(len(burst))
	if frac < 0.45 || frac > 0.65 {
		t.Fatalf("burst window holds %.2f of ops, want ≈0.57", frac)
	}
	_ = steady
}

// TestPlanZipfShape is the distribution sanity check: empirical
// rank frequencies match the Zipf pmf P(r) ∝ (1+r)^-s within
// tolerance, through the rank→user permutation.
func TestPlanZipfShape(t *testing.T) {
	cfg := planCfg()
	cfg.Ops = 200_000
	cfg.Rate = 1e6
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byUser := make(map[uint32]int)
	for _, op := range plan {
		byUser[op.User]++
	}
	// Recover rank→user the same way the plan builder draws it.
	rng := newPlanRNG(cfg.Seed)
	perm := rng.Perm(cfg.Users)

	var norm float64
	for r := 0; r < cfg.Users; r++ {
		norm += math.Pow(float64(1+r), -cfg.Skew)
	}
	for _, rank := range []int{0, 1, 2, 10, 50} {
		want := math.Pow(float64(1+rank), -cfg.Skew) / norm
		got := float64(byUser[uint32(perm[rank])]) / float64(cfg.Ops)
		if got < want*0.75 || got > want*1.25 {
			t.Errorf("rank %d: empirical frequency %.4f, Zipf predicts %.4f", rank, got, want)
		}
	}
	// The hot set must be spread over user ids, not pinned to 0..k.
	if perm[0] == 0 && perm[1] == 1 && perm[2] == 2 {
		t.Error("rank→user permutation looks like the identity")
	}
}

// TestPlanMix: op-kind fractions track the configured mix.
func TestPlanMix(t *testing.T) {
	cfg := planCfg()
	cfg.Ops = 50_000
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n [NumKinds]float64
	for _, op := range plan {
		n[op.Kind]++
		if op.Kind == Update {
			if op.Item >= uint32(cfg.Items) || op.Weight < 1 || op.Weight > 5 {
				t.Fatalf("write op out of range: %+v", op)
			}
		}
	}
	total := float64(len(plan))
	if got := n[Update] / total; math.Abs(got-cfg.WriteFrac) > 0.02 {
		t.Errorf("write fraction %.3f, want %.3f", got, cfg.WriteFrac)
	}
	wantProfile := (1 - cfg.WriteFrac) * cfg.ProfileFrac
	if got := n[Profile] / total; math.Abs(got-wantProfile) > 0.02 {
		t.Errorf("profile fraction %.3f, want %.3f", got, wantProfile)
	}
}

// TestPlanMutations: AddFrac/DelFrac draw whole-user mutations at the
// configured rates; add ids are handed out sequentially from Users;
// deletes consume previously added ids oldest-first (falling back to a
// base user only before the first add).
func TestPlanMutations(t *testing.T) {
	cfg := planCfg()
	cfg.Ops = 50_000
	cfg.AddFrac, cfg.DelFrac = 0.05, 0.03
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n [NumKinds]float64
	addNext, delNext := uint32(cfg.Users), uint32(cfg.Users)
	for _, op := range plan {
		n[op.Kind]++
		switch op.Kind {
		case AddUser:
			if op.User != addNext {
				t.Fatalf("add handed out id %d, want sequential %d", op.User, addNext)
			}
			addNext++
			if op.Item >= uint32(cfg.Items) || op.Weight < 1 || op.Weight > 5 {
				t.Fatalf("add profile entry out of range: %+v", op)
			}
		case DelUser:
			if delNext < addNext {
				if op.User != delNext {
					t.Fatalf("delete targets %d, want oldest added %d", op.User, delNext)
				}
				delNext++
			} else if op.User >= uint32(cfg.Users) {
				t.Fatalf("fallback delete targets unadded user %d", op.User)
			}
		}
	}
	total := float64(len(plan))
	if got := n[AddUser] / total; math.Abs(got-cfg.AddFrac) > 0.01 {
		t.Errorf("add fraction %.3f, want %.3f", got, cfg.AddFrac)
	}
	if got := n[DelUser] / total; math.Abs(got-cfg.DelFrac) > 0.01 {
		t.Errorf("delete fraction %.3f, want %.3f", got, cfg.DelFrac)
	}

	// Zero fracs must reproduce the historical draw sequence exactly —
	// a mutation-free plan is bit-identical to one built before the
	// mutation kinds existed.
	a, err := BuildPlan(planCfg())
	if err != nil {
		t.Fatal(err)
	}
	zero := planCfg()
	zero.AddFrac, zero.DelFrac = 0, 0
	b, err := BuildPlan(zero)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("explicit zero add/del fracs changed the plan")
	}
}

// countingTarget records ops and simulates a fixed service time.
type countingTarget struct {
	delay time.Duration
	mu    sync.Mutex
	ops   []Op
}

func (c *countingTarget) Name() string { return "stub" }
func (c *countingTarget) Close() error { return nil }
func (c *countingTarget) Do(op Op) error {
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	c.mu.Lock()
	c.ops = append(c.ops, op)
	c.mu.Unlock()
	return nil
}

// TestRunOpenLoop: with one worker and a service time far above the
// arrival interval, measured latency must grow along the run — the
// queueing delay from the scheduled start is part of the number, not
// hidden by a throttled driver.
func TestRunOpenLoop(t *testing.T) {
	plan := make([]Op, 40)
	for i := range plan {
		plan[i] = Op{At: time.Duration(i) * time.Millisecond, Kind: Neighbors, User: uint32(i)}
	}
	tgt := &countingTarget{delay: 5 * time.Millisecond}
	res, err := Run(context.Background(), tgt, plan, RunConfig{Concurrency: 1, Window: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Kinds[Neighbors].Ops; got != 40 {
		t.Fatalf("ops = %d", got)
	}
	// 40 ops × 5ms service on one worker vs 1ms arrivals: the last op
	// waits ≈160ms. p99 must reflect that backlog.
	if p99 := res.Kinds[Neighbors].P99; p99 < 50*time.Millisecond {
		t.Errorf("open-loop p99 = %v, want queueing delay ≫ service time", p99)
	}
	if p50 := res.Kinds[Neighbors].P50; p50 <= 5*time.Millisecond {
		t.Errorf("open-loop p50 = %v, should include queueing", p50)
	}
}

// TestRunCancel: a cancelled context stops dispatch promptly and
// still returns the partial result.
func TestRunCancel(t *testing.T) {
	plan := make([]Op, 1000)
	for i := range plan {
		plan[i] = Op{At: time.Duration(i) * 10 * time.Millisecond, Kind: Neighbors}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	tgt := &countingTarget{}
	res, err := Run(ctx, tgt, plan, RunConfig{Concurrency: 2})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if res == nil || res.Ops() == 0 || res.Ops() >= 1000 {
		t.Fatalf("partial result ops = %v", res)
	}
}

// serveStack brings up primaries + replicas + the HTTP front end with
// every user in a published view, and returns the base URL, the
// primary addresses (for direct targets) and the primary client (for
// draining pushed updates).
func serveStack(t *testing.T, users int) (string, []string, *netstore.Client) {
	t.Helper()
	const partitions = 4
	cluster, err := netstore.StartCluster(2, partitions, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	primary, err := netstore.Dial(cluster.Addrs(), partitions)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { primary.Close() })

	vec, err := profile.NewVector([]profile.Entry{{Item: 1, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	members := make([][]netstore.ViewEntry, partitions)
	for u := 0; u < users; u++ {
		p := u % partitions
		members[p] = append(members[p], netstore.ViewEntry{
			User: uint32(u), Neighbors: []uint32{uint32((u + 1) % users)},
			Profile: vec.AppendBinary(nil),
		})
	}
	for p := 0; p < partitions; p++ {
		if err := primary.PutBase(uint32(p), []byte("state")); err != nil {
			t.Fatal(err)
		}
		if err := primary.PutView(uint32(p), netstore.EncodeView(members[p])); err != nil {
			t.Fatal(err)
		}
	}

	reps, err := netstore.StartReplicas(cluster.Addrs(), partitions, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reps.Close() })
	srv, err := serve.New(serve.Config{Primaries: cluster.Addrs(), Replicas: reps.Addrs(), Partitions: partitions})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv.Mux())
	t.Cleanup(hs.Close)
	return hs.URL, cluster.Addrs(), primary
}

// TestEndToEndHTTP is the knnload→knnserve smoke test: a mixed
// workload over httptest completes with non-zero reads and writes,
// zero errors and misses, and the written updates drain from the
// primaries' phase-5 queue.
func TestEndToEndHTTP(t *testing.T) {
	url, _, primary := serveStack(t, 64)
	cfg := PlanConfig{
		Users: 64, Items: 500, Ops: 300,
		Rate: 3000, Skew: 1.2,
		WriteFrac: 0.2, ProfileFrac: 0.3,
		Seed: 11,
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tgt := NewHTTPTarget("replicas", url, 0)
	defer tgt.Close()
	res, err := Run(context.Background(), tgt, plan, RunConfig{Concurrency: 4, Window: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kinds[Neighbors].Ops == 0 || res.Kinds[Profile].Ops == 0 || res.Kinds[Update].Ops == 0 {
		t.Fatalf("empty op kind: %+v", res.Kinds)
	}
	if res.Errors() != 0 {
		t.Fatalf("%d errors; first: %q %q %q", res.Errors(),
			res.Kinds[0].FirstError, res.Kinds[1].FirstError, res.Kinds[2].FirstError)
	}
	if res.Misses() != 0 {
		t.Fatalf("%d misses with every user published", res.Misses())
	}
	if res.Ops() != uint64(cfg.Ops) {
		t.Fatalf("ran %d ops, planned %d", res.Ops(), cfg.Ops)
	}

	drained, err := primary.DrainUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(drained)) != res.Kinds[Update].Ops {
		t.Fatalf("drained %d updates, pushed %d", len(drained), res.Kinds[Update].Ops)
	}

	var winOps uint64
	for _, win := range res.Windows() {
		for k := range win.Ops {
			winOps += win.Ops[k]
		}
	}
	if winOps != res.Ops() {
		t.Fatalf("windows hold %d ops, total %d", winOps, res.Ops())
	}
}

// TestEndToEndDirect drives the netstore client directly against the
// primaries — the HTTP-overhead-isolation mode — on the same stack.
func TestEndToEndDirect(t *testing.T) {
	_, addrs, primary := serveStack(t, 64)
	tgt, err := NewDirectTarget("direct", addrs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tgt.Close()
	plan, err := BuildPlan(PlanConfig{
		Users: 64, Items: 500, Ops: 200, Rate: 4000, Skew: 1.2,
		WriteFrac: 0.15, ProfileFrac: 0.5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), tgt, plan, RunConfig{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() != 0 || res.Misses() != 0 {
		t.Fatalf("direct run: %d errors %d misses (first %q)", res.Errors(), res.Misses(), res.Kinds[Neighbors].FirstError)
	}
	drained, err := primary.DrainUpdates()
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(drained)) != res.Kinds[Update].Ops {
		t.Fatalf("drained %d, pushed %d", len(drained), res.Kinds[Update].Ops)
	}
}

// TestEndToEndMutations: a plan with add/del fractions drives PUT and
// DELETE /v1/profile/{id} through both target flavors, and every
// mutation lands in the primaries' delta journal.
func TestEndToEndMutations(t *testing.T) {
	url, addrs, primary := serveStack(t, 64)
	cfg := PlanConfig{
		Users: 64, Items: 500, Ops: 300,
		Rate: 3000, Skew: 1.2,
		WriteFrac: 0.1, ProfileFrac: 0.3,
		AddFrac: 0.1, DelFrac: 0.05,
		Seed: 11,
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}

	httpTgt := NewHTTPTarget("replicas", url, 0)
	defer httpTgt.Close()
	res, err := Run(context.Background(), httpTgt, plan, RunConfig{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kinds[AddUser].Ops == 0 || res.Kinds[DelUser].Ops == 0 {
		t.Fatalf("empty mutation kind: %+v", res.Kinds)
	}
	if res.Errors() != 0 {
		t.Fatalf("%d errors; add %q del %q", res.Errors(),
			res.Kinds[AddUser].FirstError, res.Kinds[DelUser].FirstError)
	}
	muts, err := primary.DrainMutations()
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Kinds[AddUser].Ops + res.Kinds[DelUser].Ops; uint64(len(muts)) != want {
		t.Fatalf("drained %d mutations, sent %d", len(muts), want)
	}

	direct, err := NewDirectTarget("direct", addrs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	res, err = Run(context.Background(), direct, plan, RunConfig{Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors() != 0 {
		t.Fatalf("direct mutations: %d errors (add %q)", res.Errors(), res.Kinds[AddUser].FirstError)
	}
	muts, err = primary.DrainMutations()
	if err != nil {
		t.Fatal(err)
	}
	if want := res.Kinds[AddUser].Ops + res.Kinds[DelUser].Ops; uint64(len(muts)) != want {
		t.Fatalf("direct drained %d mutations, sent %d", len(muts), want)
	}
}

// TestRoundRobinTarget: ops rotate evenly across the backends and
// Close fans out to every one.
func TestRoundRobinTarget(t *testing.T) {
	if _, err := NewRoundRobinTarget("empty", nil); err == nil {
		t.Fatal("round-robin over zero targets must be rejected")
	}
	backends := []*countingTarget{{}, {}, {}}
	rr, err := NewRoundRobinTarget("rr", []Target{backends[0], backends[1], backends[2]})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Name() != "rr" {
		t.Errorf("name %q", rr.Name())
	}
	const ops = 99
	var wg sync.WaitGroup
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(u uint32) {
			defer wg.Done()
			if err := rr.Do(Op{Kind: Neighbors, User: u}); err != nil {
				t.Error(err)
			}
		}(uint32(i))
	}
	wg.Wait()
	total := 0
	for i, b := range backends {
		b.mu.Lock()
		n := len(b.ops)
		b.mu.Unlock()
		total += n
		if n != ops/len(backends) {
			t.Errorf("backend %d served %d ops, want %d", i, n, ops/len(backends))
		}
	}
	if total != ops {
		t.Errorf("served %d ops in total, want %d", total, ops)
	}
	if err := rr.Close(); err != nil {
		t.Fatal(err)
	}
}
