// Package load is the serving tier's traffic side: a Zipfian workload
// driver that replays skewed point reads and profile-update writes
// against a live serving stack — cmd/knnserve over HTTP, or the
// netstore client directly — while recording per-op-type throughput
// and latency percentiles over time-bucketed windows.
//
// The driver is split the same way a reproducible benchmark must be:
//
//   - BuildPlan turns a PlanConfig (population, Zipf skew s, read/
//     write mix, open-loop arrival rate, bursts, seed) into a fully
//     deterministic op sequence — same config, bit-identical plan, so
//     two targets or two code versions see byte-for-byte the same
//     traffic.
//   - Run replays a plan against a Target open-loop: ops dispatch at
//     their scheduled times whether or not earlier ops have finished,
//     and latency is measured from the scheduled start, so a saturated
//     server shows queueing delay instead of silently throttling the
//     driver (the coordinated-omission trap).
//   - Result renders a human table and benchjson-compatible lines, so
//     the same run feeds eyeballs and the CI regression gate.
package load

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Kind is an op type in a workload plan.
type Kind uint8

// The op types a plan draws from.
const (
	// Neighbors is a GET /v1/neighbors/{id} point read.
	Neighbors Kind = iota
	// Profile is a GET /v1/profile/{id} point read.
	Profile
	// Update is a POST /v1/profile single-update write that drains
	// into the engine's phase 5.
	Update
	// AddUser is a PUT /v1/profile/{id} whole-user add that drains
	// into the engine's delta pass. New ids are sequential from Users.
	AddUser
	// DelUser is a DELETE /v1/profile/{id} tombstone, also drained by
	// the delta pass. Previously added users are deleted first.
	DelUser
	// NumKinds is the number of op types (for per-kind arrays).
	NumKinds
)

// String names the kind the way tables and bench lines print it.
func (k Kind) String() string {
	switch k {
	case Neighbors:
		return "neighbors"
	case Profile:
		return "profile"
	case Update:
		return "update"
	case AddUser:
		return "adduser"
	case DelUser:
		return "deluser"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Op is one scheduled operation of a plan.
type Op struct {
	// At is the op's scheduled dispatch time, as an offset from the
	// run's start. Open-loop: dispatch happens at At regardless of
	// whether earlier ops completed.
	At time.Duration
	// Kind selects the op type.
	Kind Kind
	// User is the target user id (Zipf-distributed popularity).
	User uint32
	// Item and Weight are the written entry for Update ops; zero
	// otherwise.
	Item uint32
	// Weight is the written entry's weight for Update ops.
	Weight float32
}

// PlanConfig describes a workload; BuildPlan expands it into ops.
type PlanConfig struct {
	// Users is the simulated user population; op targets are drawn
	// from [0, Users).
	Users int
	// Items is the item-space size writes draw from.
	Items int
	// Ops is the total operation count.
	Ops int
	// Rate is the open-loop arrival rate in ops/second.
	Rate float64
	// Skew is the Zipf exponent s (must be > 1; larger = more skew —
	// s≈1.1 is a typical web-traffic shape). Popularity rank is
	// decoupled from user id by a seeded permutation, so the hot set
	// is scattered across partitions the way real hot users are.
	Skew float64
	// WriteFrac is the fraction of ops that are profile-update
	// writes, in [0, 1).
	WriteFrac float64
	// AddFrac is the fraction of ops that add a whole new user
	// (PUT /v1/profile/{id}); new ids are handed out sequentially from
	// Users, matching the engine's sequential-id delta contract.
	AddFrac float64
	// DelFrac is the fraction of ops that tombstone a user
	// (DELETE /v1/profile/{id}). Deletes target users the plan added
	// earlier, oldest first, so the base population the views were
	// built from stays intact; a delete drawn before any add falls
	// back to a Zipf-drawn base user.
	DelFrac float64
	// ProfileFrac is the fraction of reads that hit /v1/profile
	// instead of /v1/neighbors, in [0, 1].
	ProfileFrac float64
	// Burst, when > 1, multiplies the arrival rate during burst
	// windows: the first BurstLen of every BurstEvery period runs at
	// Rate×Burst, the rest at Rate.
	Burst float64
	// BurstEvery is the burst period (0 disables bursts).
	BurstEvery time.Duration
	// BurstLen is the burst duration at the start of each period.
	BurstLen time.Duration
	// Seed fixes the RNG; equal configs build bit-identical plans.
	Seed int64
}

// validate rejects configs that would build a degenerate plan.
func (c PlanConfig) validate() error {
	switch {
	case c.Users <= 0:
		return fmt.Errorf("load: users must be positive, got %d", c.Users)
	case c.Items <= 0:
		return fmt.Errorf("load: items must be positive, got %d", c.Items)
	case c.Ops <= 0:
		return fmt.Errorf("load: ops must be positive, got %d", c.Ops)
	case c.Rate <= 0:
		return fmt.Errorf("load: rate must be positive, got %g", c.Rate)
	case c.Skew <= 1:
		return fmt.Errorf("load: zipf skew must be > 1, got %g", c.Skew)
	case c.WriteFrac < 0 || c.WriteFrac >= 1:
		return fmt.Errorf("load: writefrac must be in [0,1), got %g", c.WriteFrac)
	case c.AddFrac < 0 || c.DelFrac < 0:
		return fmt.Errorf("load: addfrac/delfrac must be ≥ 0, got %g/%g", c.AddFrac, c.DelFrac)
	case c.WriteFrac+c.AddFrac+c.DelFrac >= 1:
		return fmt.Errorf("load: writefrac+addfrac+delfrac must be < 1, got %g", c.WriteFrac+c.AddFrac+c.DelFrac)
	case c.ProfileFrac < 0 || c.ProfileFrac > 1:
		return fmt.Errorf("load: profilefrac must be in [0,1], got %g", c.ProfileFrac)
	case c.Burst > 1 && (c.BurstEvery <= 0 || c.BurstLen <= 0 || c.BurstLen > c.BurstEvery):
		return fmt.Errorf("load: burst %gx needs 0 < burstlen ≤ burstevery", c.Burst)
	}
	return nil
}

// BuildPlan expands the config into its deterministic op sequence.
// Every random draw comes from one seeded source consumed in a fixed
// order, so the sequence is a pure function of the config — the
// property the deterministic-workload test pins.
func BuildPlan(cfg PlanConfig) ([]Op, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := newPlanRNG(cfg.Seed)
	zipf := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Users-1))
	// Rank→user permutation: rank 0 (the hottest user) should not
	// always be user 0, or the hot set would pile into partition 0's
	// shard by construction.
	perm := rng.Perm(cfg.Users)

	ops := make([]Op, cfg.Ops)
	now := 0.0 // seconds
	// Mutation bookkeeping: adds hand out sequential ids from Users,
	// deletes consume them oldest-first. The bands below collapse to
	// the historical layout when AddFrac and DelFrac are zero, so draw
	// sequences — and therefore whole plans — stay bit-identical for
	// configs that predate user mutations.
	writes := cfg.WriteFrac + cfg.AddFrac + cfg.DelFrac
	addNext, delNext := uint32(cfg.Users), uint32(cfg.Users)
	for i := range ops {
		op := &ops[i]
		op.At = time.Duration(now * float64(time.Second))
		now += 1 / cfg.rateAt(now)

		op.User = uint32(perm[zipf.Uint64()])
		mix := rng.Float64()
		switch {
		case mix < cfg.WriteFrac:
			op.Kind = Update
			op.Item = uint32(rng.Intn(cfg.Items))
			op.Weight = 1 + 4*rng.Float32()
		case mix < cfg.WriteFrac+cfg.AddFrac:
			op.Kind = AddUser
			op.User = addNext
			addNext++
			op.Item = uint32(rng.Intn(cfg.Items))
			op.Weight = 1 + 4*rng.Float32()
		case mix < writes:
			op.Kind = DelUser
			if delNext < addNext {
				op.User = delNext
				delNext++
			}
		case mix < writes+(1-writes)*cfg.ProfileFrac:
			op.Kind = Profile
		default:
			op.Kind = Neighbors
		}
	}
	return ops, nil
}

// newPlanRNG is the single seeded source BuildPlan draws from. Tests
// use it to reproduce the rank→user permutation (the first draw).
func newPlanRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// rateAt is the instantaneous arrival rate at second t, accounting for
// burst windows.
func (c PlanConfig) rateAt(t float64) float64 {
	if c.Burst > 1 && c.BurstEvery > 0 {
		period := c.BurstEvery.Seconds()
		if math.Mod(t, period) < c.BurstLen.Seconds() {
			return c.Rate * c.Burst
		}
	}
	return c.Rate
}
