// Package exact computes the exact K-nearest-neighbor graph by brute
// force — the ground truth against which the out-of-core engine and the
// NN-Descent baseline are measured, and the O(n²) cost bar that
// motivates both.
package exact

import (
	"fmt"
	"sync"

	"knnpc/internal/graph"
	"knnpc/internal/knn"
	"knnpc/internal/profile"
)

// Options configures the brute-force computation.
type Options struct {
	// K is the neighbor count (required, ≥ 1).
	K int
	// Sim is the similarity measure (required).
	Sim profile.Similarity
	// Workers parallelizes over users; values below 2 run serially.
	Workers int
}

// Compute scores every ordered user pair and keeps each user's K best —
// Θ(n²) similarity evaluations. Deterministic: ties break to smaller
// ids, identical to the engine's ordering.
func Compute(store *profile.Store, opts Options) (*graph.KNN, error) {
	if opts.K <= 0 {
		return nil, fmt.Errorf("exact: K must be positive, got %d", opts.K)
	}
	if opts.Sim == nil {
		return nil, fmt.Errorf("exact: similarity measure is required")
	}
	n := store.NumUsers()
	g, err := graph.NewKNN(n, opts.K)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return g, nil
	}

	compute := func(u uint32) ([]uint32, error) {
		tk, err := knn.NewTopK(opts.K)
		if err != nil {
			return nil, err
		}
		pu := store.Get(u)
		for v := uint32(0); int(v) < n; v++ {
			if v == u {
				continue
			}
			tk.Push(v, opts.Sim.Score(pu, store.Get(v)))
		}
		return tk.IDs(), nil
	}

	if opts.Workers < 2 {
		for u := uint32(0); int(u) < n; u++ {
			ids, err := compute(u)
			if err != nil {
				return nil, err
			}
			if err := g.Set(u, ids); err != nil {
				return nil, fmt.Errorf("exact: set neighbors of %d: %w", u, err)
			}
		}
		return g, nil
	}

	results := make([][]uint32, n)
	errs := make([]error, opts.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for u := w; u < n; u += opts.Workers {
				ids, err := compute(uint32(u))
				if err != nil {
					errs[w] = err
					return
				}
				results[u] = ids
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for u, ids := range results {
		if err := g.Set(uint32(u), ids); err != nil {
			return nil, fmt.Errorf("exact: set neighbors of %d: %w", u, err)
		}
	}
	return g, nil
}
