package exact

import (
	"reflect"
	"testing"

	"knnpc/internal/dataset"
	"knnpc/internal/profile"
)

func clusteredStore(t *testing.T, users int) *profile.Store {
	t.Helper()
	vecs, _, err := dataset.RatingsProfiles(users, 500, 15, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	return profile.NewStoreFromVectors(vecs)
}

func TestComputeValidation(t *testing.T) {
	store := profile.NewStore(3)
	if _, err := Compute(store, Options{K: 0, Sim: profile.Cosine{}}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Compute(store, Options{K: 2}); err == nil {
		t.Error("nil similarity should fail")
	}
}

func TestComputeEmptyStore(t *testing.T) {
	g, err := Compute(profile.NewStore(0), Options{K: 2, Sim: profile.Cosine{}})
	if err != nil || g.NumNodes() != 0 {
		t.Errorf("empty store: g=%v err=%v", g, err)
	}
}

func TestComputeHandComputed(t *testing.T) {
	// Three users: 0 and 1 share an item, 2 is disjoint.
	mk := func(items ...uint32) profile.Vector { return profile.FromItems(items) }
	store := profile.NewStoreFromVectors([]profile.Vector{
		mk(1, 2),
		mk(2, 3),
		mk(9),
	})
	g, err := Compute(store, Options{K: 1, Sim: profile.Jaccard{}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []uint32{1}) {
		t.Errorf("N(0) = %v, want [1]", got)
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []uint32{0}) {
		t.Errorf("N(1) = %v, want [0]", got)
	}
	// user 2 ties at 0 similarity with both; smaller id wins.
	if got := g.Neighbors(2); !reflect.DeepEqual(got, []uint32{0}) {
		t.Errorf("N(2) = %v, want [0]", got)
	}
}

func TestComputeEveryNodeHasKNeighbors(t *testing.T) {
	store := clusteredStore(t, 40)
	g, err := Compute(store, Options{K: 5, Sim: profile.Cosine{}})
	if err != nil {
		t.Fatal(err)
	}
	for u := uint32(0); u < 40; u++ {
		if len(g.Neighbors(u)) != 5 {
			t.Fatalf("node %d has %d neighbors, want 5", u, len(g.Neighbors(u)))
		}
	}
}

func TestComputeParallelMatchesSerial(t *testing.T) {
	store := clusteredStore(t, 60)
	serial, err := Compute(store, Options{K: 4, Sim: profile.Cosine{}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		par, err := Compute(store, Options{K: 4, Sim: profile.Cosine{}, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if serial.DiffEdges(par) != 0 {
			t.Errorf("workers=%d: parallel result differs from serial", workers)
		}
	}
}
