package knn

import (
	"math/rand"
	"testing"
)

// BenchmarkTopKPush measures accumulator insertion under a realistic
// mix (most candidates rejected once the heap is warm).
func BenchmarkTopKPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 4096)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk, err := NewTopK(10)
		if err != nil {
			b.Fatal(err)
		}
		for j, s := range scores {
			tk.Push(uint32(j), s)
		}
	}
}

func BenchmarkTopKEncodeDecode(b *testing.B) {
	tk, err := NewTopK(10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for j := 0; j < 100; j++ {
		tk.Push(uint32(j), rng.Float64())
	}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tk.AppendBinary(buf[:0])
		if _, _, err := DecodeTopK(buf); err != nil {
			b.Fatal(err)
		}
	}
}
