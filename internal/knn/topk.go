// Package knn implements phase 4 of the paper: scoring the candidate
// tuples of H against user profiles and maintaining each user's K most
// similar candidates, from which the next graph G(t+1) is assembled. It
// also provides the recall metric used to compare the out-of-core
// result against exact brute force.
package knn

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Scored is a candidate neighbor with its similarity score.
type Scored struct {
	ID    uint32
	Score float64
}

// Better reports whether a ranks strictly above b: higher score first,
// ties to the smaller id. It is the single ordering used everywhere so
// results are deterministic.
func Better(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// TopK accumulates a user's best K candidates. It is a bounded min-heap
// (the root is the currently weakest kept candidate), giving O(log K)
// insertion. Candidates must be distinct ids — the hash table H
// guarantees each (s, d) pair is scored once per iteration.
//
// TopK is the unit of partition state the engine persists: a partition
// file carries one accumulator per member, serialized with
// AppendBinary.
type TopK struct {
	k       int
	entries []Scored // min-heap by inverse Better order
}

// NewTopK returns an empty accumulator with capacity k (k ≥ 1).
func NewTopK(k int) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("knn: top-k capacity must be positive, got %d", k)
	}
	return &TopK{k: k, entries: make([]Scored, 0, k)}, nil
}

// K reports the capacity.
func (t *TopK) K() int { return t.k }

// Len reports the number of held candidates.
func (t *TopK) Len() int { return len(t.entries) }

// worse is the heap ordering: entries[i] ranks below entries[j].
func (t *TopK) worse(i, j int) bool { return Better(t.entries[j], t.entries[i]) }

// Push offers a candidate. It keeps the K best seen so far.
func (t *TopK) Push(id uint32, score float64) {
	s := Scored{ID: id, Score: score}
	if len(t.entries) < t.k {
		t.entries = append(t.entries, s)
		t.up(len(t.entries) - 1)
		return
	}
	if !Better(s, t.entries[0]) {
		return
	}
	t.entries[0] = s
	t.down(0)
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			break
		}
		t.entries[i], t.entries[parent] = t.entries[parent], t.entries[i]
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.entries)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && t.worse(l, worst) {
			worst = l
		}
		if r < n && t.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.entries[i], t.entries[worst] = t.entries[worst], t.entries[i]
		i = worst
	}
}

// Merge folds every candidate of o into t.
func (t *TopK) Merge(o *TopK) {
	for _, e := range o.entries {
		t.Push(e.ID, e.Score)
	}
}

// Result returns the held candidates best-first (score descending, ties
// by ascending id).
func (t *TopK) Result() []Scored {
	out := append([]Scored(nil), t.entries...)
	sort.Slice(out, func(i, j int) bool { return Better(out[i], out[j]) })
	return out
}

// IDs returns the held candidate ids best-first.
func (t *TopK) IDs() []uint32 {
	res := t.Result()
	ids := make([]uint32, len(res))
	for i, s := range res {
		ids[i] = s.ID
	}
	return ids
}

// ByteSize reports the encoded size in bytes.
func (t *TopK) ByteSize() int { return 8 + 12*len(t.entries) }

// AppendBinary appends the accumulator's encoding to buf. Layout: k
// uint32, count uint32, then count × (id uint32, score float64 bits).
func (t *TopK) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.k))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.entries)))
	for _, e := range t.entries {
		buf = binary.LittleEndian.AppendUint32(buf, e.ID)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Score))
	}
	return buf
}

// DecodeTopK decodes an accumulator from the front of buf, returning it
// and the remaining bytes.
func DecodeTopK(buf []byte) (*TopK, []byte, error) {
	if len(buf) < 8 {
		return nil, nil, fmt.Errorf("knn: short top-k header (%d bytes)", len(buf))
	}
	k := int(binary.LittleEndian.Uint32(buf))
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	buf = buf[8:]
	if k <= 0 || n > k {
		return nil, nil, fmt.Errorf("knn: invalid top-k header k=%d n=%d", k, n)
	}
	if len(buf) < 12*n {
		return nil, nil, fmt.Errorf("knn: top-k payload truncated: want %d entries, have %d bytes", n, len(buf))
	}
	t := &TopK{k: k, entries: make([]Scored, n)}
	for i := 0; i < n; i++ {
		t.entries[i] = Scored{
			ID:    binary.LittleEndian.Uint32(buf[12*i:]),
			Score: math.Float64frombits(binary.LittleEndian.Uint64(buf[12*i+4:])),
		}
	}
	buf = buf[12*n:]
	// Restore the heap property (encoding preserves it, but do not
	// trust external bytes).
	for i := len(t.entries)/2 - 1; i >= 0; i-- {
		t.down(i)
	}
	return t, buf, nil
}

// SelectTopK is the sort-based reference selection used by tests and
// the brute-force baseline: the K best of candidates under the same
// ordering as TopK.
func SelectTopK(candidates []Scored, k int) []Scored {
	out := append([]Scored(nil), candidates...)
	sort.Slice(out, func(i, j int) bool { return Better(out[i], out[j]) })
	if len(out) > k {
		out = out[:k]
	}
	return out
}
