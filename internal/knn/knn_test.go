package knn

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"knnpc/internal/graph"
	"knnpc/internal/profile"
	"knnpc/internal/tuples"
)

func TestNewTopKValidation(t *testing.T) {
	if _, err := NewTopK(0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := NewTopK(-3); err == nil {
		t.Error("negative k should fail")
	}
}

func TestTopKKeepsBest(t *testing.T) {
	tk, err := NewTopK(2)
	if err != nil {
		t.Fatal(err)
	}
	tk.Push(1, 0.1)
	tk.Push(2, 0.9)
	tk.Push(3, 0.5)
	tk.Push(4, 0.05)
	want := []Scored{{ID: 2, Score: 0.9}, {ID: 3, Score: 0.5}}
	if got := tk.Result(); !reflect.DeepEqual(got, want) {
		t.Errorf("Result = %v, want %v", got, want)
	}
	if got := tk.IDs(); !reflect.DeepEqual(got, []uint32{2, 3}) {
		t.Errorf("IDs = %v", got)
	}
}

func TestTopKTieBreaksOnSmallerID(t *testing.T) {
	tk, _ := NewTopK(1)
	tk.Push(9, 0.5)
	tk.Push(3, 0.5) // same score, smaller id wins
	if got := tk.IDs(); !reflect.DeepEqual(got, []uint32{3}) {
		t.Errorf("IDs = %v, want [3]", got)
	}
	tk.Push(7, 0.5) // worse than 3 on the tiebreak
	if got := tk.IDs(); !reflect.DeepEqual(got, []uint32{3}) {
		t.Errorf("IDs after worse tie = %v, want [3]", got)
	}
}

func TestTopKMatchesSortSelectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(8)
		n := r.Intn(60)
		tk, err := NewTopK(k)
		if err != nil {
			return false
		}
		candidates := make([]Scored, 0, n)
		for i := 0; i < n; i++ {
			// Distinct ids; quantized scores force plenty of ties.
			s := Scored{ID: uint32(i), Score: float64(r.Intn(10)) / 10}
			candidates = append(candidates, s)
			tk.Push(s.ID, s.Score)
		}
		return reflect.DeepEqual(tk.Result(), SelectTopK(candidates, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKMerge(t *testing.T) {
	a, _ := NewTopK(3)
	b, _ := NewTopK(3)
	a.Push(1, 0.9)
	a.Push(2, 0.1)
	b.Push(3, 0.5)
	b.Push(4, 0.7)
	a.Merge(b)
	want := []uint32{1, 4, 3}
	if got := a.IDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("merged IDs = %v, want %v", got, want)
	}
}

func TestTopKBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		tk, err := NewTopK(k)
		if err != nil {
			return false
		}
		for i := 0; i < r.Intn(20); i++ {
			tk.Push(uint32(i), r.Float64())
		}
		buf := tk.AppendBinary(nil)
		if len(buf) != tk.ByteSize() {
			return false
		}
		got, rest, err := DecodeTopK(buf)
		if err != nil || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(got.Result(), tk.Result()) && got.K() == tk.K()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTopKErrors(t *testing.T) {
	tk, _ := NewTopK(2)
	tk.Push(1, 0.5)
	buf := tk.AppendBinary(nil)
	if _, _, err := DecodeTopK(buf[:4]); err == nil {
		t.Error("short header should fail")
	}
	if _, _, err := DecodeTopK(buf[:len(buf)-2]); err == nil {
		t.Error("truncated payload should fail")
	}
	bad := append([]byte(nil), buf...)
	bad[4] = 200 // count > k
	if _, _, err := DecodeTopK(bad); err == nil {
		t.Error("count > k should fail")
	}
}

// --- scorer ---

func testProfiles(t *testing.T) []profile.Vector {
	t.Helper()
	vecs := make([]profile.Vector, 6)
	for u := range vecs {
		entries := []profile.Entry{
			{Item: uint32(u), Weight: 1},
			{Item: uint32(u + 1), Weight: 1},
			{Item: 100, Weight: float32(u)},
		}
		v, err := profile.NewVector(entries)
		if err != nil {
			t.Fatal(err)
		}
		vecs[u] = v
	}
	return vecs
}

func TestScorerSerialMatchesParallel(t *testing.T) {
	vecs := testProfiles(t)
	lookup := func(u uint32) (profile.Vector, error) { return vecs[u], nil }
	var ts []tuples.Tuple
	for s := uint32(0); s < 6; s++ {
		for d := uint32(0); d < 6; d++ {
			if s != d {
				ts = append(ts, tuples.Tuple{S: s, D: d})
			}
		}
	}
	serial, err := (Scorer{Sim: profile.Cosine{}, Workers: 1}).Score(ts, lookup)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		parallel, err := (Scorer{Sim: profile.Cosine{}, Workers: workers}).Score(ts, lookup)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d: results differ from serial", workers)
		}
	}
}

func TestScorerErrors(t *testing.T) {
	lookupErr := func(u uint32) (profile.Vector, error) { return profile.Vector{}, errors.New("missing") }
	ts := []tuples.Tuple{{S: 0, D: 1}}
	if _, err := (Scorer{Sim: profile.Cosine{}}).Score(ts, lookupErr); err == nil {
		t.Error("lookup failure should propagate")
	}
	if _, err := (Scorer{Sim: profile.Cosine{}, Workers: 4}).Score(ts, lookupErr); err == nil {
		t.Error("lookup failure should propagate in parallel mode")
	}
	if _, err := (Scorer{}).Score(ts, nil); err == nil {
		t.Error("nil similarity should fail")
	}
	got, err := (Scorer{Sim: profile.Cosine{}}).Score(nil, nil)
	if err != nil || got != nil {
		t.Error("empty tuple list should be a cheap no-op")
	}
}

// --- recall ---

func TestRecallHandComputed(t *testing.T) {
	exact, _ := graph.NewKNN(3, 2)
	exact.Set(0, []uint32{1, 2})
	exact.Set(1, []uint32{0, 2})
	// node 2 has empty exact list -> excluded from the mean

	approx, _ := graph.NewKNN(3, 2)
	approx.Set(0, []uint32{1, 2}) // 2/2
	approx.Set(1, []uint32{2})    // 1/2
	want := (1.0 + 0.5) / 2
	if got := Recall(approx, exact); got != want {
		t.Errorf("Recall = %v, want %v", got, want)
	}
}

func TestRecallPerfectAndEmpty(t *testing.T) {
	g, _ := graph.NewKNN(4, 2)
	g.Set(0, []uint32{1, 2})
	g.Set(3, []uint32{0})
	if got := Recall(g, g); got != 1 {
		t.Errorf("self recall = %v, want 1", got)
	}
	empty, _ := graph.NewKNN(4, 2)
	if got := Recall(empty, empty); got != 0 {
		t.Errorf("recall with no exact edges = %v, want 0", got)
	}
	if got := Recall(empty, g); got != 0 {
		t.Errorf("empty approx recall = %v, want 0", got)
	}
}
