package knn

import (
	"fmt"
	"sync"

	"knnpc/internal/graph"
	"knnpc/internal/profile"
	"knnpc/internal/tuples"
)

// Scorer computes similarity scores for tuple shards, optionally in
// parallel. Scores land in a result slice indexed by tuple position, so
// the output is identical for any worker count — parallelism changes
// wall time, never results.
type Scorer struct {
	// Sim is the similarity measure; must be non-nil.
	Sim profile.Similarity
	// Workers is the number of concurrent scoring goroutines; values
	// below 2 select serial execution.
	Workers int
}

// Lookup resolves a user id to its profile. Phase 4 passes a resolver
// backed by the two resident partitions.
type Lookup func(u uint32) (profile.Vector, error)

// Score computes sim(s, d) for every tuple. The lookup must resolve
// every endpoint.
func (sc Scorer) Score(ts []tuples.Tuple, lookup Lookup) ([]float64, error) {
	if sc.Sim == nil {
		return nil, fmt.Errorf("knn: scorer has no similarity measure")
	}
	if len(ts) == 0 {
		return nil, nil
	}
	scores := make([]float64, len(ts))
	if sc.Workers < 2 {
		if err := sc.scoreRange(ts, scores, 0, len(ts), lookup); err != nil {
			return nil, err
		}
		return scores, nil
	}

	workers := sc.Workers
	if workers > len(ts) {
		workers = len(ts)
	}
	chunk := (len(ts) + workers - 1) / workers
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(ts) {
			hi = len(ts)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if err := sc.scoreRange(ts, scores, lo, hi, lookup); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return scores, nil
}

func (sc Scorer) scoreRange(ts []tuples.Tuple, scores []float64, lo, hi int, lookup Lookup) error {
	for i := lo; i < hi; i++ {
		s, err := lookup(ts[i].S)
		if err != nil {
			return fmt.Errorf("knn: profile of source %d: %w", ts[i].S, err)
		}
		d, err := lookup(ts[i].D)
		if err != nil {
			return fmt.Errorf("knn: profile of destination %d: %w", ts[i].D, err)
		}
		scores[i] = sc.Sim.Score(s, d)
	}
	return nil
}

// Recall measures how well approx reproduces the exact KNN graph: the
// mean, over nodes with a non-empty exact neighbor list, of
// |approx(u) ∩ exact(u)| / |exact(u)| — the standard KNN-graph quality
// metric (Dong et al., WWW'11). Both graphs must share a node set.
func Recall(approx, exact *graph.KNN) float64 {
	var (
		total float64
		nodes int
	)
	for u := 0; u < exact.NumNodes(); u++ {
		want := exact.Neighbors(uint32(u))
		if len(want) == 0 {
			continue
		}
		got := approx.Neighbors(uint32(u))
		// Both lists are sorted: merge-count the intersection.
		i, j, hits := 0, 0, 0
		for i < len(got) && j < len(want) {
			switch {
			case got[i] == want[j]:
				hits++
				i++
				j++
			case got[i] < want[j]:
				i++
			default:
				j++
			}
		}
		total += float64(hits) / float64(len(want))
		nodes++
	}
	if nodes == 0 {
		return 0
	}
	return total / float64(nodes)
}
