// Package dataset generates the synthetic inputs of the reproduction:
// directed graphs that stand in for the six SNAP datasets of the paper's
// Table 1 (the module is offline, so the real downloads are replaced by
// generators matching their exact node/edge counts and degree shape) and
// clustered user-profile collections for the KNN workloads.
//
// All generators are deterministic for a given seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"knnpc/internal/graph"
)

// GraphSpec describes a synthetic directed graph: an exact node and edge
// count plus a degree-skew exponent. Alpha 0 yields near-uniform degrees
// (Erdős–Rényi-like); larger Alpha concentrates edges on a few hubs
// (the heavy-tailed shape of social, collaboration and e-mail graphs).
type GraphSpec struct {
	Name  string
	Nodes int
	Edges int
	// Alpha is the power-law skew of the expected-degree sequence
	// w_i ∝ rank^(-Alpha). Typical heavy-tailed graphs use 0.6–0.9.
	Alpha float64
	Seed  int64
}

// Generate samples a simple directed graph (no self-loops, no duplicate
// arcs) with exactly the spec'd node and edge counts, using a Chung-Lu
// style weighted endpoint sampler. Node weights are shuffled so node id
// carries no degree information (the Table 1 heuristics must not get
// accidental hints from id order).
func (s GraphSpec) Generate() (*graph.Digraph, error) {
	if s.Nodes < 2 {
		return nil, fmt.Errorf("dataset: %s: need at least 2 nodes, have %d", s.Name, s.Nodes)
	}
	maxEdges := s.Nodes * (s.Nodes - 1)
	if s.Edges < 0 || s.Edges > maxEdges {
		return nil, fmt.Errorf("dataset: %s: %d edges impossible for %d nodes (max %d)",
			s.Name, s.Edges, s.Nodes, maxEdges)
	}
	if s.Alpha < 0 {
		return nil, fmt.Errorf("dataset: %s: negative alpha %g", s.Name, s.Alpha)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	sampler := newWeightedSampler(s.Nodes, s.Alpha, rng)

	g := graph.NewDigraph(s.Nodes)
	seen := make(map[uint64]struct{}, s.Edges)
	// Rejection-sample distinct non-loop edges. The attempt bound is
	// generous: real rejection rates are tiny because m << n².
	maxAttempts := 100*s.Edges + 1000
	for attempts := 0; g.NumEdges() < s.Edges; attempts++ {
		if attempts > maxAttempts {
			return nil, fmt.Errorf("dataset: %s: sampler stalled after %d attempts at %d/%d edges (alpha too skewed for density?)",
				s.Name, attempts, g.NumEdges(), s.Edges)
		}
		src := sampler.draw(rng)
		dst := sampler.draw(rng)
		if src == dst {
			continue
		}
		key := uint64(src)<<32 | uint64(dst)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.AddEdge(src, dst)
	}
	g.SortAdjacency()
	return g, nil
}

// weightedSampler draws node ids with probability proportional to a
// (shuffled) power-law weight sequence, via binary search over the
// cumulative weights.
type weightedSampler struct {
	cum []float64
}

func newWeightedSampler(n int, alpha float64, rng *rand.Rand) *weightedSampler {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -alpha)
	}
	rng.Shuffle(n, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })
	cum := make([]float64, n)
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	return &weightedSampler{cum: cum}
}

func (ws *weightedSampler) draw(rng *rand.Rand) uint32 {
	target := rng.Float64() * ws.cum[len(ws.cum)-1]
	idx := sort.SearchFloat64s(ws.cum, target)
	if idx >= len(ws.cum) {
		idx = len(ws.cum) - 1
	}
	return uint32(idx)
}

// UniformRandom generates a simple directed graph with exactly m edges
// whose endpoints are uniform — the Erdős–Rényi G(n,m) baseline.
func UniformRandom(n, m int, seed int64) (*graph.Digraph, error) {
	return GraphSpec{Name: "uniform", Nodes: n, Edges: m, Alpha: 0, Seed: seed}.Generate()
}

// PreferentialAttachment generates a directed graph by the Barabási–
// Albert process: nodes arrive one at a time and link to `out` existing
// nodes chosen proportionally to current total degree. It produces
// ≈ out×(n−1) edges with a heavy-tailed in-degree distribution and is
// used by the growth-oriented experiments (FW-1).
func PreferentialAttachment(n, out int, seed int64) (*graph.Digraph, error) {
	if n < 2 || out < 1 {
		return nil, fmt.Errorf("dataset: preferential attachment needs n≥2, out≥1 (n=%d out=%d)", n, out)
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDigraph(n)
	// targets is the repeated-endpoint urn: each edge endpoint appears
	// once, so drawing uniformly from it is degree-proportional.
	urn := []uint32{0}
	for v := 1; v < n; v++ {
		links := out
		if links > v {
			links = v
		}
		chosen := make(map[uint32]bool, links)
		for len(chosen) < links {
			var candidate uint32
			// Mix uniform choice in to keep the minimum connectivity.
			if rng.Intn(4) == 0 {
				candidate = uint32(rng.Intn(v))
			} else {
				candidate = urn[rng.Intn(len(urn))]
			}
			if candidate == uint32(v) || chosen[candidate] {
				continue
			}
			chosen[candidate] = true
		}
		// The urn's element order feeds later draws
		// (urn[rng.Intn(len(urn))]), so appending in map order made the
		// whole graph differ run to run under one seed — the same
		// map-order-into-RNG bug the dataset profile generator once had.
		// Iterate the chosen set sorted.
		added := make([]uint32, 0, len(chosen))
		for u := range chosen {
			added = append(added, u)
		}
		sort.Slice(added, func(a, b int) bool { return added[a] < added[b] })
		for _, u := range added {
			g.AddEdge(uint32(v), u)
			urn = append(urn, uint32(v), u)
		}
	}
	g.SortAdjacency()
	return g, nil
}
