package dataset

import (
	"testing"

	"knnpc/internal/graph"
	"knnpc/internal/profile"
)

func TestGenerateExactCounts(t *testing.T) {
	spec := GraphSpec{Name: "t", Nodes: 500, Edges: 3000, Alpha: 0.7, Seed: 1}
	g, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if g.NumNodes() != 500 || g.NumEdges() != 3000 {
		t.Errorf("got n=%d m=%d, want exactly 500/3000", g.NumNodes(), g.NumEdges())
	}
}

func TestGenerateSimpleGraphInvariants(t *testing.T) {
	g, err := GraphSpec{Name: "t", Nodes: 200, Edges: 1500, Alpha: 0.8, Seed: 2}.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	seen := make(map[graph.Edge]bool)
	for _, e := range g.Edges() {
		if e.Src == e.Dst {
			t.Fatalf("self loop at %d", e.Src)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GraphSpec{Name: "t", Nodes: 300, Edges: 2000, Alpha: 0.7, Seed: 3}
	a, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("edge counts differ across runs")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	c, err := GraphSpec{Name: "t", Nodes: 300, Edges: 2000, Alpha: 0.7, Seed: 4}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	same := true
	ce := c.Edges()
	for i := range ae {
		if ae[i] != ce[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should produce different graphs")
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		spec GraphSpec
	}{
		{"too few nodes", GraphSpec{Nodes: 1, Edges: 0}},
		{"too many edges", GraphSpec{Nodes: 3, Edges: 7}},
		{"negative edges", GraphSpec{Nodes: 3, Edges: -1}},
		{"negative alpha", GraphSpec{Nodes: 3, Edges: 2, Alpha: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.spec.Generate(); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestAlphaControlsSkew(t *testing.T) {
	flat, err := GraphSpec{Name: "flat", Nodes: 2000, Edges: 10000, Alpha: 0, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := GraphSpec{Name: "skewed", Nodes: 2000, Edges: 10000, Alpha: 0.9, Seed: 5}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	flatStats := graph.ComputeDegreeStats(flat.TotalDegrees())
	skewedStats := graph.ComputeDegreeStats(skewed.TotalDegrees())
	if skewedStats.Gini <= flatStats.Gini {
		t.Errorf("alpha=0.9 should be more unequal than alpha=0: gini %g vs %g",
			skewedStats.Gini, flatStats.Gini)
	}
	if skewedStats.Max < 3*flatStats.Max {
		t.Errorf("skewed max degree %d should dwarf flat max %d", skewedStats.Max, flatStats.Max)
	}
}

func TestWeightsShuffledNoIDCorrelation(t *testing.T) {
	// Node ids must not encode degree rank: the average degree of the
	// first half of ids should be close to the second half's.
	g, err := GraphSpec{Name: "t", Nodes: 2000, Edges: 20000, Alpha: 0.8, Seed: 6}.Generate()
	if err != nil {
		t.Fatal(err)
	}
	degs := g.TotalDegrees()
	var lo, hi float64
	half := len(degs) / 2
	for i, d := range degs {
		if i < half {
			lo += float64(d)
		} else {
			hi += float64(d)
		}
	}
	lo /= float64(half)
	hi /= float64(len(degs) - half)
	ratio := lo / hi
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("degree mass correlates with id halves: %.2f vs %.2f", lo, hi)
	}
}

func TestUniformRandom(t *testing.T) {
	g, err := UniformRandom(100, 500, 7)
	if err != nil {
		t.Fatalf("UniformRandom: %v", err)
	}
	if g.NumNodes() != 100 || g.NumEdges() != 500 {
		t.Errorf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(500, 3, 8)
	if err != nil {
		t.Fatalf("PreferentialAttachment: %v", err)
	}
	if g.NumNodes() != 500 {
		t.Errorf("NumNodes = %d", g.NumNodes())
	}
	// n-1 arriving nodes each link out times (capped early on).
	if g.NumEdges() < 3*450 || g.NumEdges() > 3*499 {
		t.Errorf("NumEdges = %d, want ≈ 3×499", g.NumEdges())
	}
	stats := graph.ComputeDegreeStats(g.TotalDegrees())
	if stats.Max < 20 {
		t.Errorf("PA graph should grow hubs, max degree = %d", stats.Max)
	}
	if _, err := PreferentialAttachment(1, 1, 0); err == nil {
		t.Error("n=1 should fail")
	}
	if _, err := PreferentialAttachment(10, 0, 0); err == nil {
		t.Error("out=0 should fail")
	}
}

func TestPaperPresetsMatchTable1(t *testing.T) {
	want := map[string][2]int{
		WikiVote:     {7115, 100762},
		GeneralRel:   {5241, 14484},
		HighEnergy:   {12006, 118489},
		AstroPhysics: {18771, 198050},
		Email:        {36692, 183831},
		Gnutella:     {26518, 65369},
	}
	presets := PaperPresets()
	if len(presets) != 6 {
		t.Fatalf("want 6 presets, got %d", len(presets))
	}
	for _, spec := range presets {
		w, ok := want[spec.Name]
		if !ok {
			t.Errorf("unexpected preset %q", spec.Name)
			continue
		}
		if spec.Nodes != w[0] || spec.Edges != w[1] {
			t.Errorf("%s: spec %d/%d, want %d/%d", spec.Name, spec.Nodes, spec.Edges, w[0], w[1])
		}
	}
}

func TestPresetGnutellaFlatterThanWiki(t *testing.T) {
	if testing.Short() {
		t.Skip("generates full-size preset graphs")
	}
	wiki, ok := PresetByName(WikiVote)
	if !ok {
		t.Fatal("missing Wiki-Vote preset")
	}
	gnut, ok := PresetByName(Gnutella)
	if !ok {
		t.Fatal("missing Gnutella preset")
	}
	gw, err := wiki.Generate()
	if err != nil {
		t.Fatal(err)
	}
	gg, err := gnut.Generate()
	if err != nil {
		t.Fatal(err)
	}
	wikiGini := graph.ComputeDegreeStats(gw.TotalDegrees()).Gini
	gnutGini := graph.ComputeDegreeStats(gg.TotalDegrees()).Gini
	if wikiGini <= gnutGini {
		t.Errorf("Wiki-Vote should be more skewed than Gnutella: gini %g vs %g", wikiGini, gnutGini)
	}
}

func TestPresetByNameUnknown(t *testing.T) {
	if _, ok := PresetByName("LiveJournal"); ok {
		t.Error("unknown preset should report false")
	}
}

func TestProfileGeneration(t *testing.T) {
	vecs, clusters, err := RatingsProfiles(200, 1000, 20, 4, 9)
	if err != nil {
		t.Fatalf("RatingsProfiles: %v", err)
	}
	if len(vecs) != 200 || len(clusters) != 200 {
		t.Fatalf("got %d vectors, %d clusters", len(vecs), len(clusters))
	}
	for u, v := range vecs {
		if v.Len() == 0 {
			t.Fatalf("user %d has an empty profile", u)
		}
		for _, e := range v.Entries() {
			if e.Item >= 1000 {
				t.Fatalf("user %d item %d outside item space", u, e.Item)
			}
			if e.Weight < 1 || e.Weight > 5 {
				t.Fatalf("user %d weight %g outside [1,5]", u, e.Weight)
			}
		}
		if clusters[u] < 0 || clusters[u] >= 4 {
			t.Fatalf("user %d cluster %d out of range", u, clusters[u])
		}
	}
}

func TestProfileClustersAreMeaningful(t *testing.T) {
	vecs, clusters, err := RatingsProfiles(120, 2000, 25, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	sim := profile.Cosine{}
	var same, cross float64
	var sameN, crossN int
	for i := 0; i < len(vecs); i++ {
		for j := i + 1; j < len(vecs); j++ {
			s := sim.Score(vecs[i], vecs[j])
			if clusters[i] == clusters[j] {
				same += s
				sameN++
			} else {
				cross += s
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Skip("degenerate cluster assignment")
	}
	if same/float64(sameN) <= 2*cross/float64(crossN) {
		t.Errorf("same-cluster similarity %.4f should clearly exceed cross-cluster %.4f",
			same/float64(sameN), cross/float64(crossN))
	}
}

func TestDocumentProfilesSetWeights(t *testing.T) {
	vecs, _, err := DocumentProfiles(50, 500, 30, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	for d, v := range vecs {
		for _, e := range v.Entries() {
			if e.Weight != 1 {
				t.Fatalf("doc %d term %d weight %g, want 1", d, e.Item, e.Weight)
			}
		}
	}
}

func TestProfileSpecValidation(t *testing.T) {
	base := ProfileSpec{Users: 10, Items: 100, ItemsPerUser: 5, Clusters: 2, MaxWeight: 5}
	tests := []struct {
		name   string
		mutate func(*ProfileSpec)
	}{
		{"zero users", func(s *ProfileSpec) { s.Users = 0 }},
		{"zero items", func(s *ProfileSpec) { s.Items = 0 }},
		{"zero itemsPerUser", func(s *ProfileSpec) { s.ItemsPerUser = 0 }},
		{"zero clusters", func(s *ProfileSpec) { s.Clusters = 0 }},
		{"bad noise", func(s *ProfileSpec) { s.Noise = 1.5 }},
		{"zero weight", func(s *ProfileSpec) { s.MaxWeight = 0 }},
		{"profile longer than item space", func(s *ProfileSpec) { s.ItemsPerUser = 1000 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := base
			tt.mutate(&spec)
			if _, _, err := spec.Generate(); err == nil {
				t.Error("want error")
			}
		})
	}
}
