package dataset

// Paper presets: the six datasets of Table 1 with their exact node and
// edge counts as printed in the paper. The originals are SNAP downloads
// (wiki-Vote, ca-GrQc, ca-HepPh, ca-AstroPh, email-Enron,
// p2p-Gnutella24); offline we substitute Chung-Lu graphs of identical
// size. Alpha encodes each network's degree character: voting, collab
// and e-mail graphs are strongly heavy-tailed; the Gnutella overlay is
// much flatter (peers cap their neighbor counts).
//
// Seeds are fixed so every run of the Table 1 harness sees the same six
// graphs.

// Preset names, usable with PresetByName.
const (
	WikiVote     = "Wiki-Vote"
	GeneralRel   = "Gen. Rel."
	HighEnergy   = "High Ener."
	AstroPhysics = "AstroPhy."
	Email        = "E-mail"
	Gnutella     = "Gnutella"
)

// PaperPresets returns the specs of the six Table 1 datasets, in the
// paper's row order.
func PaperPresets() []GraphSpec {
	return []GraphSpec{
		{Name: WikiVote, Nodes: 7115, Edges: 100762, Alpha: 0.80, Seed: 71150},
		{Name: GeneralRel, Nodes: 5241, Edges: 14484, Alpha: 0.65, Seed: 52410},
		{Name: HighEnergy, Nodes: 12006, Edges: 118489, Alpha: 0.70, Seed: 120060},
		{Name: AstroPhysics, Nodes: 18771, Edges: 198050, Alpha: 0.70, Seed: 187710},
		{Name: Email, Nodes: 36692, Edges: 183831, Alpha: 0.85, Seed: 366920},
		{Name: Gnutella, Nodes: 26518, Edges: 65369, Alpha: 0.15, Seed: 265180},
	}
}

// PresetByName returns the spec for one of the Table 1 datasets,
// reporting false for unknown names.
func PresetByName(name string) (GraphSpec, bool) {
	for _, s := range PaperPresets() {
		if s.Name == name {
			return s, true
		}
	}
	return GraphSpec{}, false
}
