package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"knnpc/internal/profile"
)

// ProfileSpec describes a clustered synthetic profile collection. Users
// are split across Clusters taste communities; each community prefers
// its own slice of the item space, with a small probability of sampling
// globally ("noise"). This gives the KNN iteration real structure to
// discover: same-cluster users are measurably more similar than
// cross-cluster users, so recall and convergence experiments behave as
// they would on real recommender data.
type ProfileSpec struct {
	Users int
	// Items is the size of the item space (movies, terms, ...).
	Items int
	// ItemsPerUser is the mean profile length.
	ItemsPerUser int
	// Clusters is the number of taste communities (≥1).
	Clusters int
	// Noise is the probability an item is drawn globally instead of
	// from the user's community slice; in [0, 1].
	Noise float64
	// MaxWeight is the largest item weight; weights are uniform
	// integers in [1, MaxWeight] (ratings-like). MaxWeight 1 produces
	// set profiles suited to Jaccard-style measures.
	MaxWeight int
	Seed      int64
}

// Generate produces the profile vectors and each user's community
// assignment (useful as ground truth in examples and tests).
func (s ProfileSpec) Generate() ([]profile.Vector, []int, error) {
	if s.Users <= 0 || s.Items <= 0 || s.ItemsPerUser <= 0 {
		return nil, nil, fmt.Errorf("dataset: profile spec needs positive users/items/itemsPerUser, got %+v", s)
	}
	if s.Clusters <= 0 {
		return nil, nil, fmt.Errorf("dataset: profile spec needs ≥1 cluster, got %d", s.Clusters)
	}
	if s.Noise < 0 || s.Noise > 1 {
		return nil, nil, fmt.Errorf("dataset: noise %g outside [0,1]", s.Noise)
	}
	if s.MaxWeight <= 0 {
		return nil, nil, fmt.Errorf("dataset: max weight must be positive, got %d", s.MaxWeight)
	}
	if s.ItemsPerUser > s.Items {
		return nil, nil, fmt.Errorf("dataset: itemsPerUser %d exceeds item space %d", s.ItemsPerUser, s.Items)
	}
	rng := rand.New(rand.NewSource(s.Seed))
	vectors := make([]profile.Vector, s.Users)
	clusters := make([]int, s.Users)
	sliceSize := s.Items / s.Clusters
	if sliceSize == 0 {
		sliceSize = 1
	}
	for u := 0; u < s.Users; u++ {
		c := rng.Intn(s.Clusters)
		clusters[u] = c
		lo := c * sliceSize
		// Profile length jitters ±50% around the mean, min 1.
		length := s.ItemsPerUser/2 + rng.Intn(s.ItemsPerUser+1)
		if length < 1 {
			length = 1
		}
		if length > s.Items {
			length = s.Items
		}
		chosen := make(map[uint32]bool, length)
		for len(chosen) < length {
			var item int
			if rng.Float64() < s.Noise {
				item = rng.Intn(s.Items)
			} else {
				item = lo + rng.Intn(sliceSize)
			}
			chosen[uint32(item)] = true
		}
		// Assign weights in sorted item order: drawing them while
		// ranging over the map would consume the seeded RNG in map
		// iteration order, making the "deterministic" generator differ
		// run to run.
		items := make([]uint32, 0, len(chosen))
		for item := range chosen {
			items = append(items, item)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		entries := make([]profile.Entry, 0, len(items))
		for _, item := range items {
			entries = append(entries, profile.Entry{
				Item:   item,
				Weight: float32(1 + rng.Intn(s.MaxWeight)),
			})
		}
		v, err := profile.NewVector(entries)
		if err != nil {
			return nil, nil, fmt.Errorf("dataset: build profile for user %d: %w", u, err)
		}
		vectors[u] = v
	}
	return vectors, clusters, nil
}

// RatingsProfiles is a convenience wrapper: movie-ratings-like profiles
// (weights 1..5) over a clustered item space.
func RatingsProfiles(users, items, itemsPerUser, clusters int, seed int64) ([]profile.Vector, []int, error) {
	return ProfileSpec{
		Users:        users,
		Items:        items,
		ItemsPerUser: itemsPerUser,
		Clusters:     clusters,
		Noise:        0.1,
		MaxWeight:    5,
		Seed:         seed,
	}.Generate()
}

// DocumentProfiles is a convenience wrapper: bag-of-words-like set
// profiles (weight 1) over clustered topics, suited to Jaccard.
func DocumentProfiles(docs, vocabulary, termsPerDoc, topics int, seed int64) ([]profile.Vector, []int, error) {
	return ProfileSpec{
		Users:        docs,
		Items:        vocabulary,
		ItemsPerUser: termsPerDoc,
		Clusters:     topics,
		Noise:        0.15,
		MaxWeight:    1,
		Seed:         seed,
	}.Generate()
}
