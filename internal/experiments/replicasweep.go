package experiments

import (
	"context"
	"fmt"
	"time"

	"knnpc/internal/core"
	"knnpc/internal/dataset"
	"knnpc/internal/disk"
	"knnpc/internal/load"
	"knnpc/internal/netstore"
	"knnpc/internal/profile"
)

// ReplicaPoint is one rung of the FW-10 replica-count sweep: the
// merged read latency the fixed Zipfian workload observed against a
// given number of replica sets.
type ReplicaPoint struct {
	// Label names the rung (e.g. "replicas=2/skew=1.10").
	Label string
	// Replicas is the number of replica sets behind the round-robin
	// target; 0 means the workload read the primaries directly.
	Replicas int
	// Skew is the Zipf exponent s of the rung's read plan.
	Skew float64
	// Ops is the number of read operations the rung served.
	Ops uint64
	// Misses counts not-in-any-published-view answers (legal early
	// answers, reported because primaries show them and replicas
	// don't).
	Misses uint64
	// P50 and P99 are the merged read percentiles — the worse of the
	// neighbors and profile op kinds, matching knnload's table.
	P50, P99 time.Duration
}

// ReplicaSweep runs the FW-10 sweep: fixed-seed Zipfian read plans
// (open loop) replayed against the serving tier at increasing
// replica-set counts, while the engine iterates phase 4 underneath on
// emulated HDD spindles. The 0-replica rung reads the primaries
// directly — lookups queue behind live phase-4 state I/O on the same
// spindles — and each r>0 rung round-robins the identical plan across
// r replica sets that answer from their view caches.
//
// The sweep is two-dimensional: every replica count is measured at
// every Zipf exponent in skews (plans differ only in skew — same
// seed, same rate, same op count). The skew dimension answers the
// FW-10 leftover directly: the client's shard hint cache only pays
// off when the same hot users repeat, so as s falls toward uniform
// traffic the replica rungs' advantage should flatten — the table
// shows where adding replicas (and caching hints) stops helping.
func ReplicaSweep(ctx context.Context, users int, replicaCounts []int, skews []float64, ops int) ([]ReplicaPoint, error) {
	const partitions = 8
	if len(skews) == 0 {
		return nil, fmt.Errorf("experiments: replica sweep needs at least one skew")
	}
	vecs, _, err := dataset.RatingsProfiles(users, 4*users, 25, 8, 1)
	if err != nil {
		return nil, err
	}
	eng, err := core.New(profile.NewStoreFromVectors(vecs), core.Options{
		K:              10,
		NumPartitions:  partitions,
		Workers:        2,
		ExecWorkers:    2,
		Slots:          2,
		PrefetchDepth:  2,
		AsyncWriteback: true,
		NetStoreShards: 2,
		PublishViews:   true,
		OnDisk:         true,
		EmulateDisk:    &disk.HDD,
		Seed:           1,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	// The warmup iteration publishes the first serve views, so no rung
	// starts against an empty serving tier.
	if _, err := eng.Iterate(ctx); err != nil {
		return nil, err
	}
	points := make([]ReplicaPoint, 0, len(replicaCounts)*len(skews))
	for _, r := range replicaCounts {
		for _, skew := range skews {
			plan, err := load.BuildPlan(load.PlanConfig{
				Users: users, Items: 500, Ops: ops,
				Rate: 1000, Skew: skew, ProfileFrac: 0.3,
				Seed: 1,
			})
			if err != nil {
				return nil, err
			}
			p, err := replicaRung(ctx, eng, plan, partitions, r, skew)
			if err != nil {
				return nil, err
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// replicaRung measures one replica count: it assembles the read
// target (primaries, or r round-robined replica sets pulled from
// them), replays the plan open-loop while the engine keeps iterating,
// and reports the merged read percentiles.
func replicaRung(ctx context.Context, eng *core.Engine, plan []load.Op, partitions, r int, skew float64) (ReplicaPoint, error) {
	point := ReplicaPoint{
		Label:    fmt.Sprintf("replicas=%d/skew=%.2f", r, skew),
		Replicas: r,
		Skew:     skew,
	}
	var target load.Target
	if r == 0 {
		t, err := load.NewDirectTarget(point.Label, eng.StoreAddrs(), partitions)
		if err != nil {
			return point, err
		}
		target = t
	} else {
		// Each StartReplicas call is one full replica set (one replica
		// per primary shard, same emulated disk model as the engine's
		// own loopback replicas); the round-robin target is the
		// client-side load balancer across the sets.
		var sets []*netstore.ReplicaSet
		closeSets := func() {
			for _, s := range sets {
				s.Close()
			}
		}
		backends := make([]load.Target, 0, r)
		for i := 0; i < r; i++ {
			rs, err := netstore.StartReplicas(eng.StoreAddrs(), partitions, &disk.HDD)
			if err != nil {
				closeSets()
				return point, err
			}
			sets = append(sets, rs)
			t, err := load.NewDirectTarget(fmt.Sprintf("%s/set%d", point.Label, i), rs.Addrs(), partitions)
			if err != nil {
				closeSets()
				return point, err
			}
			backends = append(backends, t)
		}
		rr, err := load.NewRoundRobinTarget(point.Label, backends)
		if err != nil {
			closeSets()
			return point, err
		}
		target = rr
		defer closeSets()
	}
	defer target.Close()

	// Keep the engine iterating for the whole replay so the measured
	// reads contend with (primaries) or hide from (replicas) live
	// phase-4 I/O — the contrast the sweep exists to show.
	stop := make(chan struct{})
	engDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				engDone <- nil
				return
			default:
			}
			if _, err := eng.Iterate(ctx); err != nil {
				engDone <- err
				return
			}
		}
	}()
	res, err := load.Run(ctx, target, plan, load.RunConfig{Concurrency: 8})
	close(stop)
	if engErr := <-engDone; engErr != nil {
		return point, engErr
	}
	if err != nil {
		return point, err
	}
	if n := res.Errors(); n > 0 {
		return point, fmt.Errorf("experiments: %d protocol errors at %s (first: %s)",
			n, point.Label, res.Kinds[load.Neighbors].FirstError)
	}
	point.Ops = res.Ops()
	point.Misses = res.Misses()
	point.P50 = max(res.Kinds[load.Neighbors].P50, res.Kinds[load.Profile].P50)
	point.P99 = max(res.Kinds[load.Neighbors].P99, res.Kinds[load.Profile].P99)
	return point, nil
}
