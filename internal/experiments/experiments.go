// Package experiments programmatically regenerates every table and
// figure of the paper plus the future-work sweeps, returning structured
// rows that the command-line harnesses print and EXPERIMENTS.md
// records. Keeping the experiment logic in one library guarantees the
// numbers in documentation, commands and benchmarks come from the same
// code.
package experiments

import (
	"context"
	"fmt"
	"time"

	"knnpc/internal/core"
	"knnpc/internal/dataset"
	"knnpc/internal/disk"
	"knnpc/internal/pigraph"
	"knnpc/internal/profile"
)

// Table1Row is one dataset row of the paper's Table 1.
type Table1Row struct {
	Dataset string
	Nodes   int
	Edges   int
	// Ops maps heuristic name to simulated load/unload operations.
	Ops map[string]int64
}

// PaperTable1 returns the values printed in the paper's Table 1,
// keyed by dataset then heuristic name.
func PaperTable1() map[string]map[string]int64 {
	return map[string]map[string]int64{
		dataset.WikiVote:     {"Seq.": 211856, "High-Low": 204706, "Low-High": 202290},
		dataset.GeneralRel:   {"Seq.": 34506, "High-Low": 32220, "Low-High": 31256},
		dataset.HighEnergy:   {"Seq.": 252754, "High-Low": 242132, "Low-High": 240872},
		dataset.AstroPhysics: {"Seq.": 420442, "High-Low": 400050, "Low-High": 401770},
		dataset.Email:        {"Seq.": 399604, "High-Low": 382928, "Low-High": 379312},
		dataset.Gnutella:     {"Seq.": 157040, "High-Low": 144072, "Low-High": 132710},
	}
}

// Table1 regenerates the paper's Table 1 over the given datasets and
// heuristics: each dataset graph is used as PI-graph structure and
// each heuristic's schedule is validated and simulated.
func Table1(specs []dataset.GraphSpec, heuristics []pigraph.Heuristic) ([]Table1Row, error) {
	rows := make([]Table1Row, 0, len(specs))
	for _, spec := range specs {
		dg, err := spec.Generate()
		if err != nil {
			return nil, fmt.Errorf("experiments: generate %s: %w", spec.Name, err)
		}
		pi, err := pigraph.FromDigraph(dg)
		if err != nil {
			return nil, fmt.Errorf("experiments: PI graph of %s: %w", spec.Name, err)
		}
		row := Table1Row{
			Dataset: spec.Name,
			Nodes:   spec.Nodes,
			Edges:   spec.Edges,
			Ops:     make(map[string]int64, len(heuristics)),
		}
		for _, h := range heuristics {
			schedule := h.Plan(pi)
			if err := schedule.Validate(pi); err != nil {
				return nil, fmt.Errorf("experiments: %s schedule on %s: %w", h.Name(), spec.Name, err)
			}
			row.Ops[h.Name()] = schedule.Simulate().Ops()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SweepPoint is one measured configuration of an engine sweep.
type SweepPoint struct {
	// Label names the swept value (e.g. "users=2000").
	Label string
	// IterTime is the mean wall time of one full iteration.
	IterTime time.Duration
	// ScoreTime is the mean wall time of phase 4 alone — the phase
	// the pipelined executor accelerates.
	ScoreTime time.Duration
	// PartitionTime and TuplesTime are the mean wall times of phases 1
	// and 2 — the build side the BuildWorkers pool accelerates.
	PartitionTime time.Duration
	TuplesTime    time.Duration
	// Ops is the load/unload operations of the last iteration.
	Ops int64
	// PrefetchedLoads is the last iteration's asynchronously issued
	// loads (0 when running serial).
	PrefetchedLoads int64
	// AsyncUnloads is the last iteration's background write-backs
	// (0 without AsyncWriteback).
	AsyncUnloads int64
	// PrefetchedShardBytes is the last iteration's tuple-shard volume
	// read ahead of the cursor (0 without ShardPrefetch).
	PrefetchedShardBytes int64
	// IO is the I/O delta of the last iteration.
	IO disk.Snapshot
	// Devices is the cumulative per-spindle emulated-device accounting
	// at the end of the run — one entry per state-store shard (plus the
	// local spindle when file-backed I/O is emulated). Empty without
	// emulation.
	Devices []disk.DeviceAccounting
}

// EngineConfig describes one engine sweep point.
type EngineConfig struct {
	Label      string
	Users      int
	K          int
	Partitions int
	Workers    int
	// ExecWorkers shards the phase-4 op tape across that many executor
	// goroutines (0/1 = the single-cursor execution).
	ExecWorkers int
	// BuildWorkers parallelizes the phase-1/2 build side across that
	// many producer goroutines (0/1 = the serial build). Output and
	// accounting are identical at every count.
	BuildWorkers int
	// Slots, PrefetchDepth, AsyncWriteback and ShardPrefetch configure
	// phase-4 execution: S resident partitions (0 = the paper's 2),
	// the async load lookahead (0 = serial loads), background
	// write-back of evicted state, and the tuple-shard read lookahead
	// (0 = synchronous shard reads).
	Slots          int
	PrefetchDepth  int
	AsyncWriteback bool
	ShardPrefetch  int
	// NetStoreShards moves partition state behind an in-process
	// loopback cluster of that many network state-store shards, one
	// emulated spindle per shard (0 = the in-process store).
	NetStoreShards int
	OnDisk         bool
	// EmulateDisk enforces the named disk model's latency on state
	// I/O ("" = none) so latency-bound comparisons are host-neutral.
	EmulateDisk string
	Iterations  int
	Seed        int64
}

// RunEngine measures one engine configuration: it generates a clustered
// ratings workload, runs the requested iterations, and reports the mean
// iteration time plus the final iteration's ops and I/O.
func RunEngine(ctx context.Context, cfg EngineConfig) (SweepPoint, error) {
	point := SweepPoint{Label: cfg.Label}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2
	}
	vecs, _, err := dataset.RatingsProfiles(cfg.Users, 4*cfg.Users, 25, 8, cfg.Seed)
	if err != nil {
		return point, err
	}
	emulate, err := disk.ResolveModel(cfg.EmulateDisk)
	if err != nil {
		return point, err
	}
	eng, err := core.New(profile.NewStoreFromVectors(vecs), core.Options{
		K:              cfg.K,
		NumPartitions:  cfg.Partitions,
		Workers:        cfg.Workers,
		ExecWorkers:    cfg.ExecWorkers,
		BuildWorkers:   cfg.BuildWorkers,
		Slots:          cfg.Slots,
		PrefetchDepth:  cfg.PrefetchDepth,
		AsyncWriteback: cfg.AsyncWriteback,
		ShardPrefetch:  cfg.ShardPrefetch,
		NetStoreShards: cfg.NetStoreShards,
		OnDisk:         cfg.OnDisk,
		EmulateDisk:    emulate,
		Seed:           cfg.Seed,
	})
	if err != nil {
		return point, err
	}
	defer eng.Close()

	var total, score, part, tuples time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		st, err := eng.Iterate(ctx)
		if err != nil {
			return point, err
		}
		total += st.Phases.Total()
		score += st.Phases.Score
		part += st.Phases.Partition
		tuples += st.Phases.Tuples
		point.Ops = st.Ops()
		point.PrefetchedLoads = st.PrefetchedLoads
		point.AsyncUnloads = st.AsyncUnloads
		point.PrefetchedShardBytes = st.PrefetchedShardBytes
		point.IO = st.IO
	}
	point.IterTime = total / time.Duration(cfg.Iterations)
	point.ScoreTime = score / time.Duration(cfg.Iterations)
	point.PartitionTime = part / time.Duration(cfg.Iterations)
	point.TuplesTime = tuples / time.Duration(cfg.Iterations)
	point.Devices = eng.IOStats().Devices
	return point, nil
}

// GraphSizeSweep measures iteration time against user count (FW-1).
func GraphSizeSweep(ctx context.Context, sizes []int) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(sizes))
	for _, n := range sizes {
		p, err := RunEngine(ctx, EngineConfig{
			Label: fmt.Sprintf("users=%d", n), Users: n,
			K: 10, Partitions: 8, OnDisk: true, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// MemorySweep measures ops and I/O against the partition count m
// (FW-2): larger m = smaller resident footprint bought with more
// load/unload operations.
func MemorySweep(ctx context.Context, users int, ms []int) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(ms))
	for _, m := range ms {
		p, err := RunEngine(ctx, EngineConfig{
			Label: fmt.Sprintf("m=%d", m), Users: users,
			K: 10, Partitions: m, OnDisk: true, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// ThreadSweep measures iteration time against scoring workers (FW-4).
func ThreadSweep(ctx context.Context, users int, workers []int) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(workers))
	for _, w := range workers {
		p, err := RunEngine(ctx, EngineConfig{
			Label: fmt.Sprintf("workers=%d", w), Users: users,
			K: 10, Partitions: 8, Workers: w, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// PrefetchSweep contrasts serial phase-4 execution with the pipelined
// executor at several lookahead depths on the on-disk configuration
// (FW-5): every point performs the identical Loads/Unloads op
// sequence, so differences are pure I/O–compute overlap. The model
// ("hdd", "ssd", ... or "" for raw host speed) enforces device latency
// on state I/O, which is what makes the comparison meaningful on hosts
// whose page cache hides real disk cost.
func PrefetchSweep(ctx context.Context, users int, depths []int, workers int, model string) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(depths))
	for _, d := range depths {
		label := "serial"
		if d > 0 {
			label = fmt.Sprintf("prefetch=%d", d)
		}
		if model != "" {
			label += "/" + model
		}
		p, err := RunEngine(ctx, EngineConfig{
			Label: label, Users: users,
			K: 10, Partitions: 8, Workers: workers, PrefetchDepth: d,
			OnDisk: true, EmulateDisk: model, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// PipelineStage is one configuration of the FW-6 pipeline ablation.
type PipelineStage struct {
	Label          string
	PrefetchDepth  int
	AsyncWriteback bool
	ShardPrefetch  int
}

// PipelineStages returns the FW-6 ablation ladder: each stage enables
// one more of the three overlapped phase-4 I/O streams, so the table
// attributes the win stream by stream.
func PipelineStages(depth int) []PipelineStage {
	return []PipelineStage{
		{Label: "serial"},
		{Label: fmt.Sprintf("prefetch=%d", depth), PrefetchDepth: depth},
		{Label: fmt.Sprintf("prefetch=%d+writeback", depth), PrefetchDepth: depth, AsyncWriteback: true},
		{Label: fmt.Sprintf("prefetch=%d+writeback+shardahead=%d", depth, depth),
			PrefetchDepth: depth, AsyncWriteback: true, ShardPrefetch: depth},
	}
}

// PipelineSweep runs the FW-6 ablation: the same on-disk workload under
// an emulated disk model, adding one pipelined I/O stream per stage
// (load prefetch, then async write-back, then shard read-ahead). Every
// stage performs the identical Loads/Unloads op sequence; phase-4 time
// differences are pure I/O–compute overlap.
func PipelineSweep(ctx context.Context, users, depth, workers int, model string) ([]SweepPoint, error) {
	stages := PipelineStages(depth)
	points := make([]SweepPoint, 0, len(stages))
	for _, st := range stages {
		label := st.Label
		if model != "" {
			label += "/" + model
		}
		p, err := RunEngine(ctx, EngineConfig{
			Label: label, Users: users,
			K: 10, Partitions: 8, Workers: workers,
			PrefetchDepth: st.PrefetchDepth, AsyncWriteback: st.AsyncWriteback, ShardPrefetch: st.ShardPrefetch,
			OnDisk: true, EmulateDisk: model, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// ExecWorkerSweep runs the FW-7 sweep: phase-4 execution sharded
// across W tape workers (full three-stream pipeline per worker, wider
// slot budget so the segments have real lookahead room) on the same
// emulated-disk workload. Totals stay deterministic per (Slots, W) —
// each point reports its summed op count — while wall time shows how
// much scoring the shared-spindle device leaves overlappable.
func ExecWorkerSweep(ctx context.Context, users int, workerCounts []int, model string) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		label := fmt.Sprintf("execworkers=%d", w)
		if model != "" {
			label += "/" + model
		}
		p, err := RunEngine(ctx, EngineConfig{
			Label: label, Users: users,
			K: 10, Partitions: 8, Workers: 2, ExecWorkers: w,
			Slots: 4, PrefetchDepth: 2, AsyncWriteback: true, ShardPrefetch: 2,
			OnDisk: true, EmulateDisk: model, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// NetstoreSweep runs the FW-8 sweep: phase 4 at a fixed worker count,
// first on the single shared spindle (the PR-3 ceiling), then over the
// network state store at increasing shard counts — same full
// three-stream pipeline per worker throughout. Each netstore point's
// Devices carries per-shard modeled/slept device time, so the table
// shows the queueing ceiling moving: one spindle's modeled time divides
// across N shards that sleep concurrently, and phase-4 wall time drops
// even though per-worker op tapes (and the summed op count) are
// unchanged.
func NetstoreSweep(ctx context.Context, users, workers int, shardCounts []int, model string) ([]SweepPoint, error) {
	configs := make([]EngineConfig, 0, 1+len(shardCounts))
	base := EngineConfig{
		Users: users, K: 10, Partitions: 8, Workers: 2, ExecWorkers: workers,
		Slots: 4, PrefetchDepth: 2, AsyncWriteback: true, ShardPrefetch: 2,
		OnDisk: true, EmulateDisk: model, Iterations: 2, Seed: 1,
	}
	single := base
	single.Label = fmt.Sprintf("single-spindle/workers=%d/%s", workers, model)
	configs = append(configs, single)
	for _, n := range shardCounts {
		p := base
		p.NetStoreShards = n
		p.Label = fmt.Sprintf("netstore/workers=%d/shards=%d/%s", workers, n, model)
		configs = append(configs, p)
	}
	points := make([]SweepPoint, 0, len(configs))
	for _, cfg := range configs {
		p, err := RunEngine(ctx, cfg)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// BuildWorkerSweep runs the FW-9 sweep: the phase-1/2 build pool at
// increasing widths over the shard-per-spindle state store (the layout
// where the parallel build's state installs sleep on several emulated
// spindles concurrently), with a fixed pipelined phase 4. Tuple
// tallies, shard contents and the op tape are identical at every
// width; the per-phase wall times show the serial fraction of the
// iteration shrinking.
func BuildWorkerSweep(ctx context.Context, users int, workerCounts []int, shards int, model string) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(workerCounts))
	for _, w := range workerCounts {
		label := fmt.Sprintf("buildworkers=%d", w)
		if shards > 0 {
			label += fmt.Sprintf("/shards=%d", shards)
		}
		if model != "" {
			label += "/" + model
		}
		p, err := RunEngine(ctx, EngineConfig{
			Label: label, Users: users,
			K: 10, Partitions: 16, Workers: 2, ExecWorkers: 2, BuildWorkers: w,
			Slots: 4, PrefetchDepth: 2, AsyncWriteback: true, ShardPrefetch: 2,
			NetStoreShards: shards,
			OnDisk:         true, EmulateDisk: model, Iterations: 2, Seed: 1,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// DiskProjection projects one iteration's measured I/O through the
// HDD/SSD/NVMe cost models (FW-3), returning modeled device time per
// model name.
func DiskProjection(io disk.Snapshot) map[string]time.Duration {
	out := make(map[string]time.Duration, 3)
	for _, m := range []disk.Model{disk.HDD, disk.SSD, disk.NVMe} {
		out[m.Name] = m.EstimateTime(io)
	}
	return out
}
