package experiments

import (
	"context"
	"fmt"

	"knnpc/internal/core"
	"knnpc/internal/dataset"
	"knnpc/internal/exact"
	"knnpc/internal/knn"
	"knnpc/internal/nndescent"
	"knnpc/internal/profile"
)

// ConvergencePoint is one iteration of a quality trajectory.
type ConvergencePoint struct {
	Iteration int
	// Recall is measured against the brute-force exact KNN graph.
	Recall float64
	// EdgeChanges is the engine's convergence signal at this step.
	EdgeChanges int
	// ScoredTuples counts similarity evaluations this iteration.
	ScoredTuples int64
}

// ConvergenceResult compares the out-of-core engine's quality
// trajectory with the NN-Descent baseline on the same workload.
type ConvergenceResult struct {
	Engine []ConvergencePoint
	// NNDescentRecall is the baseline's final recall.
	NNDescentRecall float64
	// NNDescentSimEvals is the baseline's total similarity
	// evaluations.
	NNDescentSimEvals int64
	// BruteForceEvals is n(n-1)/2, the exact computation's cost.
	BruteForceEvals int64
}

// ConvergenceConfig parameterizes the trajectory experiment.
type ConvergenceConfig struct {
	Users      int
	K          int
	Partitions int
	Iterations int
	// Exploration adds random candidates per user per iteration
	// (0 = the paper's pure rule).
	Exploration int
	Seed        int64
}

// Convergence runs the engine for the configured iterations, measuring
// recall against brute force after every iteration, and runs NN-Descent
// once on the same data for comparison. It quantifies the trade the
// paper makes: the out-of-core iteration converges more slowly than the
// in-memory baseline (no reverse neighbors) but never holds more than
// two partitions of profile state in memory.
func Convergence(ctx context.Context, cfg ConvergenceConfig) (*ConvergenceResult, error) {
	if cfg.Iterations <= 0 {
		cfg.Iterations = 8
	}
	vecs, _, err := dataset.RatingsProfiles(cfg.Users, 4*cfg.Users, 25, 8, cfg.Seed)
	if err != nil {
		return nil, err
	}
	store := profile.NewStoreFromVectors(vecs)

	truth, err := exact.Compute(store, exact.Options{K: cfg.K, Sim: profile.Cosine{}, Workers: 4})
	if err != nil {
		return nil, fmt.Errorf("experiments: ground truth: %w", err)
	}
	n := int64(cfg.Users)
	result := &ConvergenceResult{BruteForceEvals: n * (n - 1) / 2}

	eng, err := core.New(store, core.Options{
		K:                cfg.K,
		NumPartitions:    cfg.Partitions,
		RandomCandidates: cfg.Exploration,
		Seed:             cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	defer eng.Close()
	for i := 0; i < cfg.Iterations; i++ {
		st, err := eng.Iterate(ctx)
		if err != nil {
			return nil, err
		}
		result.Engine = append(result.Engine, ConvergencePoint{
			Iteration:    i,
			Recall:       knn.Recall(eng.Graph(), truth),
			EdgeChanges:  st.EdgeChanges,
			ScoredTuples: st.TuplesScored,
		})
		if st.EdgeChanges == 0 {
			break
		}
	}

	approx, stats, err := nndescent.Run(store, nndescent.Options{
		K:    cfg.K,
		Sim:  profile.Cosine{},
		Rho:  0.5, // the standard sampling rate of Dong et al.
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: NN-Descent baseline: %w", err)
	}
	result.NNDescentRecall = knn.Recall(approx, truth)
	result.NNDescentSimEvals = stats.SimEvals
	return result, nil
}
