package experiments

import (
	"context"
	"testing"

	"knnpc/internal/dataset"
	"knnpc/internal/disk"
	"knnpc/internal/pigraph"
)

// smallSpecs returns downsized dataset specs so the experiment paths
// run fast under test; the full presets are exercised by cmd/table1
// and the benchmarks.
func smallSpecs() []dataset.GraphSpec {
	return []dataset.GraphSpec{
		{Name: "small-skewed", Nodes: 400, Edges: 3000, Alpha: 0.8, Seed: 1},
		{Name: "small-flat", Nodes: 400, Edges: 1200, Alpha: 0.1, Seed: 2},
	}
}

func TestTable1Rows(t *testing.T) {
	rows, err := Table1(smallSpecs(), pigraph.Heuristics())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		seq, hl, lh := row.Ops["Seq."], row.Ops["High-Low"], row.Ops["Low-High"]
		if seq == 0 || hl == 0 || lh == 0 {
			t.Fatalf("%s: missing ops: %+v", row.Dataset, row.Ops)
		}
		if hl > seq || lh > seq {
			t.Errorf("%s: degree heuristics should not lose to sequential (%d/%d vs %d)",
				row.Dataset, hl, lh, seq)
		}
	}
}

func TestPaperTable1Shape(t *testing.T) {
	paper := PaperTable1()
	if len(paper) != 6 {
		t.Fatalf("paper table should have 6 datasets, has %d", len(paper))
	}
	for ds, ops := range paper {
		seq := ops["Seq."]
		for h, v := range ops {
			if v <= 0 {
				t.Errorf("%s/%s: non-positive ops", ds, h)
			}
			if h != "Seq." && v >= seq {
				t.Errorf("%s: paper reports %s (%d) beating Seq. (%d)?", ds, h, v, seq)
			}
		}
	}
}

func TestRunEngineAndSweeps(t *testing.T) {
	ctx := context.Background()
	point, err := RunEngine(ctx, EngineConfig{
		Label: "tiny", Users: 120, K: 4, Partitions: 4, Iterations: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if point.IterTime <= 0 || point.Ops == 0 {
		t.Errorf("sweep point not measured: %+v", point)
	}

	sizes, err := GraphSizeSweep(ctx, []int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 2 || sizes[0].Label != "users=100" {
		t.Errorf("size sweep wrong: %+v", sizes)
	}

	mems, err := MemorySweep(ctx, 150, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mems) != 2 {
		t.Fatalf("memory sweep wrong length")
	}
	// More partitions -> more load/unload operations.
	if mems[1].Ops <= mems[0].Ops {
		t.Errorf("m=4 should need more ops than m=2: %d vs %d", mems[1].Ops, mems[0].Ops)
	}

	threads, err := ThreadSweep(ctx, 120, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 2 {
		t.Fatalf("thread sweep wrong length")
	}
}

func TestDiskProjectionOrdering(t *testing.T) {
	io := disk.Snapshot{Seeks: 100, BytesRead: 10 << 20, BytesWritten: 10 << 20}
	proj := DiskProjection(io)
	if !(proj["hdd"] > proj["ssd"] && proj["ssd"] > proj["nvme"]) {
		t.Errorf("projection ordering wrong: %v", proj)
	}
	for name, d := range proj {
		if d <= 0 {
			t.Errorf("%s: non-positive modeled time %v", name, d)
		}
	}
}

// TestNetstoreSweep: FW-8's points all perform the same summed op
// count (the tape is store-independent), the single-spindle point has
// exactly one device entry, and every netstore point carries one
// accounting entry per shard with balanced per-shard books.
func TestNetstoreSweep(t *testing.T) {
	points, err := NetstoreSweep(context.Background(), 200, 2, []int{1, 2}, "nvme")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points, want single-spindle + 2 shard counts", len(points))
	}
	for i, p := range points {
		if p.Ops != points[0].Ops {
			t.Errorf("%s: %d ops, single-spindle did %d — the tape must not depend on the store", p.Label, p.Ops, points[0].Ops)
		}
		wantDevices := 1 // the local spindle
		if i > 0 {
			wantDevices = 1 + i // plus one per shard (shards=1, then 2)
		}
		if len(p.Devices) != wantDevices {
			t.Fatalf("%s: %d device entries, want %d: %+v", p.Label, len(p.Devices), wantDevices, p.Devices)
		}
		for _, d := range p.Devices {
			if d.Slept+d.Debt != d.Modeled {
				t.Errorf("%s device %s: books unbalanced (%v + %v != %v)", p.Label, d.Name, d.Slept, d.Debt, d.Modeled)
			}
		}
	}
}

func TestBuildWorkerSweep(t *testing.T) {
	points, err := BuildWorkerSweep(context.Background(), 200, []int{1, 2}, 2, "nvme")
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want one per worker count", len(points))
	}
	for _, p := range points {
		if p.PartitionTime <= 0 || p.TuplesTime <= 0 {
			t.Errorf("%s: build-phase times not measured: %+v", p.Label, p)
		}
		// The build width never changes the tape or the tuple set.
		if p.Ops != points[0].Ops {
			t.Errorf("%s: %d ops, serial build did %d — accounting must not depend on BuildWorkers", p.Label, p.Ops, points[0].Ops)
		}
	}
	if points[0].Label != "buildworkers=1/shards=2/nvme" {
		t.Errorf("unexpected label %q", points[0].Label)
	}
}

// TestReplicaSweep: FW-10's rungs replay the same-size read plan at
// every (replica count, skew) pair, so every rung serves the full op
// count; percentiles must be measured and ordered.
func TestReplicaSweep(t *testing.T) {
	points, err := ReplicaSweep(context.Background(), 200, []int{0, 1}, []float64{1.2, 1.6}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want one per (replica count, skew) pair", len(points))
	}
	wantReplicas := []int{0, 0, 1, 1}
	wantSkew := []float64{1.2, 1.6, 1.2, 1.6}
	for i, p := range points {
		if p.Ops != 200 {
			t.Errorf("%s: served %d ops, want the full plan (200)", p.Label, p.Ops)
		}
		if p.P50 <= 0 || p.P99 < p.P50 {
			t.Errorf("%s: bad percentiles p50=%v p99=%v", p.Label, p.P50, p.P99)
		}
		if p.Replicas != wantReplicas[i] || p.Skew != wantSkew[i] {
			t.Errorf("point %d: replicas=%d skew=%g, want %d/%g", i, p.Replicas, p.Skew, wantReplicas[i], wantSkew[i])
		}
	}
	if points[0].Label != "replicas=0/skew=1.20" {
		t.Errorf("unexpected label %q", points[0].Label)
	}
	if points[3].Label != "replicas=1/skew=1.60" {
		t.Errorf("unexpected label %q", points[3].Label)
	}

	if _, err := ReplicaSweep(context.Background(), 200, []int{0}, nil, 100); err == nil {
		t.Error("empty skew list accepted")
	}
}
