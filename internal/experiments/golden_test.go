package experiments

import (
	"testing"

	"knnpc/internal/dataset"
	"knnpc/internal/pigraph"
)

// TestTable1GoldenGenRel pins the exact operation counts of the
// smallest Table 1 dataset. The generator and every heuristic are
// seeded and deterministic, so these integers must never drift between
// runs or platforms; a change here means the reproduction's reported
// numbers changed and EXPERIMENTS.md must be regenerated.
func TestTable1GoldenGenRel(t *testing.T) {
	spec, ok := dataset.PresetByName(dataset.GeneralRel)
	if !ok {
		t.Fatal("missing preset")
	}
	rows, err := Table1([]dataset.GraphSpec{spec}, pigraph.AllHeuristics())
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string]int64{
		"Seq.":         36326,
		"High-Low":     33448,
		"Low-High":     33430,
		"Greedy-Reuse": 31986,
		"Cost-Aware":   30670,
		"Edge-Order":   57496,
	}
	for h, want := range golden {
		if got := rows[0].Ops[h]; got != want {
			t.Errorf("%s: ops = %d, want golden %d (regenerate EXPERIMENTS.md if intentional)", h, got, want)
		}
	}
}
