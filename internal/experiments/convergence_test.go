package experiments

import (
	"context"
	"testing"
)

func TestConvergenceTrajectory(t *testing.T) {
	res, err := Convergence(context.Background(), ConvergenceConfig{
		Users: 150, K: 5, Partitions: 5, Iterations: 8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Engine) == 0 {
		t.Fatal("no trajectory points")
	}
	first, last := res.Engine[0], res.Engine[len(res.Engine)-1]
	if last.Recall < first.Recall {
		t.Errorf("recall regressed: %.3f -> %.3f", first.Recall, last.Recall)
	}
	if last.EdgeChanges > first.EdgeChanges {
		t.Errorf("edge churn grew: %d -> %d", first.EdgeChanges, last.EdgeChanges)
	}
	if res.NNDescentRecall < 0.5 {
		t.Errorf("NN-Descent baseline recall %.3f suspiciously low", res.NNDescentRecall)
	}
	if res.NNDescentSimEvals >= res.BruteForceEvals {
		t.Errorf("baseline used %d evals, brute force needs %d", res.NNDescentSimEvals, res.BruteForceEvals)
	}
}

func TestConvergenceWithExploration(t *testing.T) {
	// Exploration must not break the trajectory; it typically speeds
	// discovery on clustered data.
	res, err := Convergence(context.Background(), ConvergenceConfig{
		Users: 120, K: 4, Partitions: 4, Iterations: 6, Exploration: 2, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Engine) == 0 || res.Engine[len(res.Engine)-1].Recall <= 0 {
		t.Error("exploration trajectory empty or zero recall")
	}
}
