// Package latency provides a fixed-size log-scale histogram for
// request-latency capture under sustained load.
//
// The previous serving-tier capture was a 4096-sample overwrite ring:
// fine for a smoke test, but under a production workload the ring
// holds only the last few milliseconds of traffic, so /stats p99
// jittered with whatever burst happened last. The histogram replaces
// it with log-linear buckets — values below 64ns get exact buckets,
// and above that each power of two is split into 32 linear
// sub-buckets, bounding relative bucket width by 1/32 ≈ 3.1% — so
// recording is three atomic adds, memory is fixed at ~15KB forever,
// and the percentiles converge instead of thrashing as requests
// accumulate into the millions.
//
// Record with Histogram.Observe; read with Histogram.Snapshot, which
// is a consistent-enough copy for monitoring (individual bucket reads
// are atomic; a snapshot taken mid-Observe may be off by the in-flight
// sample). Snapshot.Sub turns two cumulative snapshots into a
// windowed one, which is how the load driver computes per-time-bucket
// percentiles without resetting anything.
package latency

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the resolution: each power of two above the linear
	// region is split into 2^(subBits-1) = 32 sub-buckets, so a
	// bucket is at most 1/32 ≈ 3.1% wide relative to its value.
	subBits = 6
	// sub is the size of the exact linear region: values in [0, 64)
	// nanoseconds each get their own bucket.
	sub = 1 << subBits
	// half is the number of sub-buckets each octave contributes above
	// the linear region (only the upper half of the mantissa range is
	// reachable there).
	half = sub / 2
	// maxShift is the largest octave shift a uint64 nanosecond value
	// can need.
	maxShift = 64 - subBits
	// numBuckets covers every uint64 value: the linear region plus
	// half buckets for each shift 1..maxShift.
	numBuckets = sub + maxShift*half
)

// bucketFor maps a nanosecond value to its bucket index, strictly
// monotone in the value. Values below sub are exact; above, the
// bucket holds [m<<shift, (m+1)<<shift) for mantissa m ∈ [half, sub).
func bucketFor(ns uint64) int {
	if ns < sub {
		return int(ns)
	}
	shift := bits.Len64(ns) - subBits // ≥ 1
	m := int(ns >> shift)             // ∈ [half, sub)
	return sub + (shift-1)*half + (m - half)
}

// bucketValue returns the representative (midpoint) nanosecond value
// of bucket b — the inverse of bucketFor up to bucket width.
func bucketValue(b int) uint64 {
	if b < sub {
		return uint64(b)
	}
	r := b - sub
	shift := r/half + 1
	m := uint64(r%half) + half
	lo := m << shift
	hi := (m+1)<<shift - 1
	return lo + (hi-lo)/2
}

// Histogram is a concurrent-safe cumulative latency histogram.
// The zero value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Uint64 // total nanoseconds, for Mean
}

// Observe records one latency sample. Negative durations count as
// zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketFor(uint64(d))].Add(1)
	h.n.Add(1)
	h.sum.Add(uint64(d))
}

// Snapshot copies the histogram's current state for reading.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		counts: make([]uint64, numBuckets),
		n:      h.n.Load(),
		sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
	}
	return s
}

// Snapshot is an immutable copy of a Histogram, or (via Sub) the
// difference of two copies — i.e. one time window of traffic.
type Snapshot struct {
	counts []uint64
	n      uint64
	sum    uint64
}

// Count reports how many samples the snapshot holds.
func (s Snapshot) Count() uint64 { return s.n }

// Mean reports the arithmetic-mean latency, 0 when empty.
func (s Snapshot) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / s.n)
}

// Sub returns the samples recorded after prev was taken: the windowed
// view s − prev. prev must be an earlier snapshot of the same
// histogram.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := Snapshot{
		counts: make([]uint64, numBuckets),
		n:      s.n - prev.n,
		sum:    s.sum - prev.sum,
	}
	for i := range s.counts {
		d.counts[i] = s.counts[i] - prev.counts[i]
	}
	return d
}

// Quantile returns the latency at quantile q ∈ [0, 1] (0.99 = p99),
// accurate to the bucket's ≤3.1% relative width. Empty snapshots
// report 0.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based — the same nearest-rank rule
	// a sorted-slice oracle `sorted[int(q*(n-1))]` uses.
	rank := uint64(q*float64(s.n-1)) + 1
	var seen uint64
	for b, c := range s.counts {
		seen += c
		if seen >= rank {
			return time.Duration(bucketValue(b))
		}
	}
	return time.Duration(bucketValue(numBuckets - 1))
}
