package latency

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: every bucket's representative value maps back
// to the same bucket, indices are monotone in the value, and the
// representative is within the documented 3.1% of any value in the
// bucket — checked over the whole dynamic range.
func TestBucketRoundTrip(t *testing.T) {
	for b := 0; b < numBuckets; b++ {
		if got := bucketFor(bucketValue(b)); got != b {
			t.Fatalf("bucketFor(bucketValue(%d)) = %d", b, got)
		}
	}
	prev := -1
	for _, ns := range []uint64{0, 1, 63, 64, 65, 127, 128, 1000, 4095, 1 << 20, 1<<20 + 1<<15, 1 << 40, 1<<64 - 1} {
		b := bucketFor(ns)
		if b < prev {
			t.Fatalf("bucketFor not monotone at %d: %d < %d", ns, b, prev)
		}
		prev = b
		rep := bucketValue(b)
		if diff := absDiff(rep, ns); float64(diff) > float64(ns)/32+1 {
			t.Errorf("bucket %d: representative %d is %d away from member %d", b, rep, diff, ns)
		}
	}
}

func absDiff(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

// TestQuantileAgainstSortedOracle is the satellite's percentile-math
// check: feed identical samples to the histogram and to a plain
// sorted slice, and require every quantile to agree within the
// histogram's bucket width. Three distributions — uniform, log-normal-
// ish (exponentiated uniform), and a spiky bimodal — so the error
// bound is not an artifact of one shape.
func TestQuantileAgainstSortedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() time.Duration{
		"uniform": func() time.Duration {
			return time.Duration(rng.Int63n(int64(50 * time.Millisecond)))
		},
		"lognormalish": func() time.Duration {
			return time.Duration(float64(time.Microsecond) * float64(uint64(1)<<uint(rng.Intn(16))) * (1 + rng.Float64()))
		},
		"bimodal": func() time.Duration {
			if rng.Intn(100) < 95 {
				return time.Duration(rng.Int63n(int64(200 * time.Microsecond)))
			}
			return 30*time.Millisecond + time.Duration(rng.Int63n(int64(5*time.Millisecond)))
		},
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]time.Duration, 200_000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := h.Snapshot()
			if s.Count() != uint64(len(samples)) {
				t.Fatalf("count = %d, want %d", s.Count(), len(samples))
			}
			for _, q := range []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				oracle := samples[int(q*float64(len(samples)-1))]
				got := s.Quantile(q)
				// Bucket width is ≤ value/32; allow one bucket each way
				// plus 1ns of integer slack.
				tol := time.Duration(float64(oracle)/16) + 1
				if got < oracle-tol || got > oracle+tol {
					t.Errorf("q=%v: histogram %v vs oracle %v (tol %v)", q, got, oracle, tol)
				}
			}
		})
	}
}

// TestSnapshotSubWindows: subtracting snapshots isolates one window's
// samples exactly — the basis of the load driver's per-time-bucket
// percentiles.
func TestSnapshotSubWindows(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Millisecond)
	}
	mid := h.Snapshot()
	for i := 0; i < 500; i++ {
		h.Observe(8 * time.Millisecond)
	}
	win := h.Snapshot().Sub(mid)
	if win.Count() != 500 {
		t.Fatalf("window count = %d", win.Count())
	}
	// Every sample in the window is 8ms, so all quantiles sit there.
	for _, q := range []float64{0, 0.5, 1} {
		if got := win.Quantile(q); got < 7*time.Millisecond || got > 9*time.Millisecond {
			t.Errorf("window q=%v = %v, want ≈8ms", q, got)
		}
	}
	if m := win.Mean(); m < 7*time.Millisecond || m > 9*time.Millisecond {
		t.Errorf("window mean = %v", m)
	}
	// The cumulative view still has both populations.
	all := h.Snapshot()
	if all.Count() != 1500 {
		t.Fatalf("cumulative count = %d", all.Count())
	}
	if got := all.Quantile(0.5); got < 900*time.Microsecond || got > 1100*time.Microsecond {
		t.Errorf("cumulative p50 = %v, want ≈1ms", got)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines under
// the race detector and checks nothing is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if n := h.Snapshot().Count(); n != workers*per {
		t.Fatalf("count = %d, want %d", n, workers*per)
	}
}

// TestObserveEdgeCases: negatives clamp to zero, zero is representable.
func TestObserveEdgeCases(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	h.Observe(0)
	s := h.Snapshot()
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	if got := s.Quantile(1); got != 0 {
		t.Errorf("max of {clamped, 0} = %v, want 0", got)
	}
}
